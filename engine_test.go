package hotpaths

import (
	"reflect"
	"sync"
	"testing"
)

func engineTestConfig() Config {
	return Config{
		Eps:    5,
		W:      60,
		Epoch:  10,
		K:      10,
		Bounds: Rect{Min: Pt(-3000, -3000), Max: Pt(4000, 4000)},
	}
}

// The sharded Engine must be indistinguishable from the single-threaded
// System on the same workload: identical top-k (ids, geometry, hotness),
// identical score, identical counters.
func TestEngineMatchesSystem(t *testing.T) {
	cfg := engineTestConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const horizon = 120 // multiple of Epoch, so final counters are exact
	for _, batch := range IngestWorkload(48, horizon, 42) {
		for _, o := range batch {
			if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		now := batch[0].T
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(now); err != nil {
			t.Fatal(err)
		}
	}

	sysStats, engStats := sys.Stats(), eng.Stats()
	if sysStats.Reports == 0 || sysStats.Crossings == 0 {
		t.Fatalf("workload too tame to be meaningful: %+v", sysStats)
	}
	if !reflect.DeepEqual(sysStats, engStats) {
		t.Errorf("stats diverge:\n system %+v\n engine %+v", sysStats, engStats)
	}
	sysTop, engTop := sys.TopK(), eng.TopK()
	if !reflect.DeepEqual(sysTop, engTop) {
		t.Errorf("top-k diverges:\n system %+v\n engine %+v", sysTop, engTop)
	}
	if sys.Score() != eng.Score() {
		t.Errorf("score diverges: system %v engine %v", sys.Score(), eng.Score())
	}
	if la, lb := len(sys.HotPaths()), len(eng.HotPaths()); la != lb {
		t.Errorf("live path counts diverge: system %d engine %d", la, lb)
	}

	// Close drains; queries keep answering from the last processed epoch.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sys.TopK(), eng.TopK()) {
		t.Error("top-k changed across Close")
	}
}

// Many producers feeding disjoint object partitions concurrently, with
// queries racing the ingestion — the -race backstop for the Engine's
// locking discipline.
func TestEngineConcurrentIngest(t *testing.T) {
	const (
		producers = 4
		nObjects  = 64
		horizon   = 80
	)
	eng, err := NewEngine(EngineConfig{Config: engineTestConfig(), Shards: 4, Buffer: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	batches := IngestWorkload(nObjects, horizon, 7)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader hammering the query surface
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = eng.TopK()
				_ = eng.Stats()
				_ = eng.Score()
			}
		}
	}()

	for _, batch := range batches {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			part := make([]Observation, 0, len(batch)/producers+1)
			for _, o := range batch {
				if o.ObjectID%producers == p {
					part = append(part, o)
				}
			}
			wg.Add(1)
			go func(part []Observation) {
				defer wg.Done()
				if err := eng.ObserveBatch(part); err != nil {
					t.Error(err)
				}
			}(part)
		}
		wg.Wait()
		if err := eng.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	st := eng.Stats()
	if want := nObjects * horizon; st.Observations != want {
		t.Errorf("Observations = %d, want %d", st.Observations, want)
	}
	if st.Reports == 0 {
		t.Error("concurrent workload raised no reports")
	}
	if len(eng.TopK()) == 0 {
		t.Error("no hot paths discovered")
	}
}

// A sparse, client-driven clock that jumps over epoch boundaries must
// still trigger epoch processing — and System and Engine must agree on
// the sparse schedule too.
func TestSparseTicksCrossEpochBoundaries(t *testing.T) {
	cfg := engineTestConfig() // Epoch: 10
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// No tick ever lands on a multiple of 10.
	ticks := map[int64]int64{13: 0, 27: 0, 41: 0, 55: 0, 69: 0, 83: 0, 97: 0, 111: 0}
	for _, batch := range IngestWorkload(48, 120, 42) {
		for _, o := range batch {
			if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		now := batch[0].T
		if _, ok := ticks[now]; !ok {
			continue
		}
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	// Final sparse tick past the last batch (121 crosses the boundary at
	// 120) so the engine drains and the counters are exact.
	if err := sys.Tick(121); err != nil {
		t.Fatal(err)
	}
	if err := eng.Tick(121); err != nil {
		t.Fatal(err)
	}
	sysStats, engStats := sys.Stats(), eng.Stats()
	if sysStats.Responses == 0 {
		t.Fatal("sparse ticks must still process epochs")
	}
	if !reflect.DeepEqual(sysStats, engStats) {
		t.Errorf("stats diverge on sparse schedule:\n system %+v\n engine %+v", sysStats, engStats)
	}
	if !reflect.DeepEqual(sys.TopK(), eng.TopK()) {
		t.Error("top-k diverges on sparse schedule")
	}
}

// A clock jump far past the staged reports' exit timestamps must not
// surface phantom hot paths: the crossings recorded by the late epoch are
// already outside the window and expire within the same Tick.
func TestStaleJumpExpiresImmediately(t *testing.T) {
	cfg := engineTestConfig()
	cfg.W = 20
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// A sharp turn forces reports by t=8; then the clock stalls until 500.
	for now := int64(1); now <= 8; now++ {
		x := float64(now) * 6
		y := 0.0
		if now > 4 {
			y = 40
		}
		if err := sys.Observe(1, x, y, now); err != nil {
			t.Fatal(err)
		}
		if err := eng.Observe(1, x, y, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Tick(500); err != nil {
		t.Fatal(err)
	}
	if err := eng.Tick(500); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Crossings == 0 {
		t.Fatal("the late epoch must still have processed the reports")
	}
	for name, top := range map[string][]HotPath{"system": sys.TopK(), "engine": eng.TopK()} {
		if len(top) != 0 {
			t.Errorf("%s reports phantom hot paths after a >W clock jump: %+v", name, top)
		}
	}
	if got := sys.Stats().IndexSize; got != 0 {
		t.Errorf("system index size = %d after stale-jump epoch", got)
	}
	if got := eng.Stats().IndexSize; got != 0 {
		t.Errorf("engine index size = %d after stale-jump epoch", got)
	}
}

func TestEngineValidation(t *testing.T) {
	bad := engineTestConfig()
	bad.Eps = 0
	if _, err := NewEngine(EngineConfig{Config: bad}); err == nil {
		t.Error("invalid config must be rejected")
	}

	eng, err := NewEngine(EngineConfig{Config: engineTestConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != 2 {
		t.Errorf("Shards() = %d, want 2", eng.Shards())
	}
	if err := eng.ObserveNoisy(1, 0, 0, 1, 1, 1); err == nil {
		t.Error("ObserveNoisy without Delta must error")
	}
	if err := eng.ObserveBatch([]Observation{{ObjectID: 1, X: 0, Y: 0, T: 1, SigmaX: 1}}); err == nil {
		t.Error("noisy batched observation without Delta must error")
	}

	noisy := engineTestConfig()
	noisy.Delta = 0.05
	eng2, err := NewEngine(EngineConfig{Config: noisy, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if err := eng2.ObserveNoisy(1, 0, 0, 0, 1, 1); err == nil {
		t.Error("non-positive sigma must error")
	}
	if err := eng2.ObserveBatch([]Observation{{ObjectID: 1, T: 1, SigmaX: 0.5, SigmaY: -1}}); err == nil {
		t.Error("mixed-sign sigmas must error")
	}
	if err := eng2.ObserveNoisy(1, 0, 0, 0.5, 0.5, 1); err != nil {
		t.Errorf("valid noisy observation rejected: %v", err)
	}
}

// Targeted advertising (the paper's first motivating scenario, Section 1):
// a stadium hosts a major sporting event and subscribers converge on it
// from several districts. The mobile carrier watches the hot motion paths
// in real time and places a promotion on the hottest approach route —
// customers currently crossing it are the ones who will pass the advertised
// store.
//
// Run with: go run ./examples/advertising
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hotpaths"
)

// district is a residential origin spawning fans who head to the stadium.
type district struct {
	name   string
	origin hotpaths.Point
}

func main() {
	stadium := hotpaths.Pt(5000, 5000)
	districts := []district{
		{"North Hills", hotpaths.Pt(5000, 9500)},
		{"West End", hotpaths.Pt(500, 5000)},
		{"Old Harbour", hotpaths.Pt(8800, 1200)},
	}

	sys, err := hotpaths.New(hotpaths.Config{
		Eps:    25,
		W:      400,
		Epoch:  10,
		K:      3,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(0, 0), Max: hotpaths.Pt(10000, 10000)},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	const fansPerDistrict = 40
	type fan struct {
		id     int
		from   hotpaths.Point
		depart int64
		jitter float64
	}
	var fans []fan
	id := 0
	for d, dist := range districts {
		for i := 0; i < fansPerDistrict; i++ {
			fans = append(fans, fan{
				id:     id,
				from:   dist.origin,
				depart: int64(rng.Intn(60)),
				jitter: rng.Float64()*30 - 15,
			})
			id++
			_ = d
		}
	}

	const speed = 14.0 // m per timestamp — arterial driving
	for now := int64(1); now <= 400; now++ {
		for _, f := range fans {
			step := now - f.depart
			if step < 1 {
				continue
			}
			// March toward the stadium along the straight arterial,
			// laterally offset by the fan's lane jitter.
			dx, dy := stadium.X-f.from.X, stadium.Y-f.from.Y
			total := math.Hypot(dx, dy)
			done := float64(step) * speed
			if done >= total+40*speed {
				continue // long inside the venue; phone goes quiet
			}
			if done > total {
				done = total // parked at the gates — the stop flushes the trip
			}
			frac := done / total
			// Perpendicular jitter.
			px, py := -dy/total, dx/total
			x := f.from.X + dx*frac + px*f.jitter + rng.Float64()*4 - 2
			y := f.from.Y + dy*frac + py*f.jitter + rng.Float64()*4 - 2
			if err := sys.Observe(f.id, x, y, now); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Tick(now); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("event-day hot approach routes (top 3):")
	top := sys.TopK()
	for i, hp := range top {
		fmt.Printf("%d. (%.0f,%.0f) -> (%.0f,%.0f)  hotness=%d  length=%.0fm\n",
			i+1, hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y, hp.Hotness, hp.Length())
	}
	if len(top) == 0 {
		fmt.Println("(no hot paths in the window)")
		return
	}

	// Place the promotion on the best path by the paper's SCORE metric
	// (hotness × length): raw hotness favours short parked-at-the-gates
	// stubs, while score singles out the long approach avenues where the
	// advertised store actually sits en route.
	hot := top[0]
	for _, hp := range top[1:] {
		if hp.Score() > hot.Score() {
			hot = hp
		}
	}
	mid := hotpaths.Pt((hot.Start.X+hot.End.X)/2, (hot.Start.Y+hot.End.Y)/2)
	best, bestD := "", math.Inf(1)
	for _, d := range districts {
		dd := math.Hypot(d.origin.X-mid.X, d.origin.Y-mid.Y)
		if dd < bestD {
			best, bestD = d.name, dd
		}
	}
	fmt.Printf("\npromotion placement: (%.0f, %.0f) on the %s approach — "+
		"%d subscribers crossed this path in the current window\n",
		mid.X, mid.Y, best, hot.Hotness)
}

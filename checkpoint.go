package hotpaths

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/engine"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// Checkpoint codec: the serialized form of a System's or Engine's complete
// state, written by the durability layer at epoch boundaries so recovery
// replays at most one window of WAL records instead of the full history.
//
// The payload is framed as
//
//	"HPCK"  magic
//	uint32  LE version
//	uint32  LE CRC-32C of the body
//	body    gob(checkpointBody)
//
// The body embeds the resolved Config the state was produced under;
// decoding verifies it against the recovering instance's Config, since
// restoring state into a differently-parameterised pipeline would break
// the determinism that recovery relies on.

const checkpointVersion = 1

var checkpointMagic = []byte("HPCK")

var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

// checkpointBody is the gob-encoded checkpoint content. engine.State is
// deployment-agnostic: System and Engine dump to and restore from the
// same structure.
type checkpointBody struct {
	Config Config
	State  engine.State
}

// encodeCheckpoint serializes a state dump taken under cfg.
func encodeCheckpoint(cfg Config, st engine.State) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(checkpointBody{Config: cfg, State: st}); err != nil {
		return nil, fmt.Errorf("hotpaths: encode checkpoint: %w", err)
	}
	out := make([]byte, 0, len(checkpointMagic)+8+body.Len())
	out = append(out, checkpointMagic...)
	out = binary.LittleEndian.AppendUint32(out, checkpointVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body.Bytes(), checkpointCRC))
	return append(out, body.Bytes()...), nil
}

// decodeCheckpoint validates and deserializes a checkpoint payload,
// rejecting it when it was written under a different configuration.
func decodeCheckpoint(b []byte, want Config) (engine.State, error) {
	hdr := len(checkpointMagic) + 8
	if len(b) < hdr || !bytes.Equal(b[:len(checkpointMagic)], checkpointMagic) {
		return engine.State{}, fmt.Errorf("hotpaths: not a checkpoint file")
	}
	if v := binary.LittleEndian.Uint32(b[len(checkpointMagic):]); v != checkpointVersion {
		return engine.State{}, fmt.Errorf("hotpaths: checkpoint version %d not supported", v)
	}
	body := b[hdr:]
	if got, wantCRC := crc32.Checksum(body, checkpointCRC), binary.LittleEndian.Uint32(b[len(checkpointMagic)+4:]); got != wantCRC {
		return engine.State{}, fmt.Errorf("hotpaths: checkpoint checksum mismatch")
	}
	var cb checkpointBody
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&cb); err != nil {
		return engine.State{}, fmt.Errorf("hotpaths: decode checkpoint: %w", err)
	}
	if cb.Config != want {
		return engine.State{}, fmt.Errorf("hotpaths: checkpoint was written under config %+v, recovering with %+v", cb.Config, want)
	}
	return cb.State, nil
}

// dumpState captures the System's complete state in the shared
// checkpoint structure. The System's pending list already interleaves
// follow-up and observation-raised reports in batch order.
func (s *System) dumpState() engine.State {
	st := engine.State{
		Clock:        trajectory.Time(s.lastNow),
		Observations: int64(s.stats.Observations),
		Reports:      int64(s.stats.Reports),
		Responses:    s.stats.Responses,
		Pending:      append([]coordinator.Report(nil), s.pending...),
		Coord:        s.coord.DumpState(),
	}
	for id, f := range s.filters {
		sig := s.sigmas[id]
		st.Filters = append(st.Filters, engine.FilterEntry{
			ObjectID: id,
			SigmaX:   sig[0],
			SigmaY:   sig[1],
			Filter:   f.Dump(),
		})
	}
	sort.Slice(st.Filters, func(i, j int) bool { return st.Filters[i].ObjectID < st.Filters[j].ObjectID })
	return st
}

// restoreState replaces the System's state with a dumped one. The System
// must be freshly built from the same Config.
func (s *System) restoreState(st engine.State) error {
	if err := s.coord.RestoreState(st.Coord); err != nil {
		return err
	}
	s.filters = make(map[int]*raytrace.Filter, len(st.Filters))
	s.sigmas = make(map[int][2]float64)
	for _, fe := range st.Filters {
		if _, dup := s.filters[fe.ObjectID]; dup {
			return fmt.Errorf("hotpaths: restored filter for object %d is duplicated", fe.ObjectID)
		}
		s.filters[fe.ObjectID] = raytrace.Restore(fe.Filter, s.cfg.toleranceFunc(fe.SigmaX, fe.SigmaY))
		if fe.SigmaX != 0 || fe.SigmaY != 0 {
			s.sigmas[fe.ObjectID] = [2]float64{fe.SigmaX, fe.SigmaY}
		}
	}
	s.pending = append([]coordinator.Report(nil), st.Pending...)
	s.lastNow = int64(st.Clock)
	s.stats = Stats{
		Observations: int(st.Observations),
		Reports:      int(st.Reports),
		Responses:    st.Responses,
	}
	return nil
}

//go:build replication_e2e

// The multi-process replication golden test: real hotpathsd processes, a
// primary and a follower, over real TCP. It is behind the replication_e2e
// build tag because it builds binaries and spawns processes — CI runs it
// as its own step (see .github/workflows/ci.yml); locally:
//
//	go test -race -tags replication_e2e -run TestReplicationE2E ./cmd/hotpathsd
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles hotpathsd (with -race, so the spawned daemons are
// themselves race-checked) into a temp dir and returns the binary path.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hotpathsd")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build hotpathsd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral localhost port and returns host:port.
// The tiny window between Close and the daemon's bind is acceptable for a
// test that owns the machine.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type daemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	base    string
	logs    *bytes.Buffer
	stopped bool
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	addr := freeAddr(t)
	logs := &bytes.Buffer{}
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stderr = logs
	cmd.Stdout = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, base: "http://" + addr, logs: logs}
	t.Cleanup(func() { d.stop() })
	d.waitReady()
	return d
}

func (d *daemon) stop() {
	if d.cmd.Process == nil || d.stopped {
		return
	}
	d.stopped = true
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

func (d *daemon) waitReady() {
	d.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("daemon at %s never became ready; logs:\n%s", d.base, d.logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) get(path string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v; logs:\n%s", path, err, d.logs)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, b
}

func (d *daemon) post(path string, body any) (int, []byte) {
	d.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			d.t.Fatal(err)
		}
	}
	resp, err := http.Post(d.base+path, "application/json", &buf)
	if err != nil {
		d.t.Fatalf("POST %s: %v; logs:\n%s", path, err, d.logs)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (d *daemon) stats() map[string]any {
	d.t.Helper()
	code, b := d.get("/stats")
	if code != http.StatusOK {
		d.t.Fatalf("/stats: %d %s", code, b)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		d.t.Fatalf("/stats decode: %v", err)
	}
	return m
}

// e2eObservations mirrors the commuter-flow idea of the in-process golden
// tests: three lanes of objects marching along a corridor so paths form,
// heat up and expire within the run.
func e2eObservations(tick int64) []observationJSON {
	var obs []observationJSON
	for lane := int64(0); lane < 4; lane++ {
		for o := int64(0); o < 3; o++ {
			id := lane*3 + o
			depart := id * 4
			s := tick - depart
			if s < 0 || s > 60 {
				continue
			}
			obs = append(obs, observationJSON{
				Object: int(id),
				X:      float64(s) * 11,
				Y:      float64(lane*40) + float64(o),
				T:      tick,
			})
		}
	}
	return obs
}

// TestReplicationE2E is the acceptance golden test: a follower hotpathsd
// process attaches to a primary hotpathsd process mid-stream and reaches
// byte-identical /topk, /paths and /paths.geojson answers at every shared
// epoch boundary — including across a primary checkpoint + WAL truncation
// and a forced follower reconnect.
func TestReplicationE2E(t *testing.T) {
	bin := buildDaemon(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	primary := startDaemon(t, bin,
		"-wal", walDir,
		"-fsync", "1ms",
		"-wal-segment", "8192", // rotate often so checkpoints truncate for real
		"-eps", "5", "-w", "40", "-epoch", "5", "-k", "10",
		"-bounds", "-100,-100,2000,2000",
	)

	const horizon = 120
	feed := func(tick int64) {
		t.Helper()
		code, b := primary.post("/observe", observeRequest{Observations: e2eObservations(tick), Tick: tick})
		if code != http.StatusOK {
			t.Fatalf("observe t=%d: %d %s", tick, code, b)
		}
	}

	// First stretch before the follower exists: it must catch up on attach.
	var tick int64
	for tick = 1; tick <= 40; tick++ {
		feed(tick)
	}

	follower := startDaemon(t, bin, "-follow", primary.base, "-max-lag", "0")

	// awaitEpoch blocks until the follower's applied clock and epoch match
	// the primary's /stats view.
	awaitEpoch := func(wantEpoch, wantClock float64) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			fs := follower.stats()
			if fs["epoch"] == wantEpoch && fs["clock"] == wantClock {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at epoch=%v clock=%v, want epoch=%v clock=%v\nfollower stats: %v\nfollower logs:\n%s",
					fs["epoch"], fs["clock"], wantEpoch, wantClock, fs, follower.logs)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	compare := func() {
		t.Helper()
		for _, path := range []string{"/topk", "/paths", "/paths.geojson", "/topk?sort=score&k=5", "/paths?min_hotness=2&bbox=0,0,700,200"} {
			pc, pb := primary.get(path)
			fc, fb := follower.get(path)
			if pc != http.StatusOK || fc != http.StatusOK {
				t.Fatalf("%s: primary %d, follower %d", path, pc, fc)
			}
			if !bytes.Equal(pb, fb) {
				t.Fatalf("%s diverged at tick %d:\nprimary:  %s\nfollower: %s", path, tick, pb, fb)
			}
		}
	}

	checked := 0
	for ; tick <= horizon; tick++ {
		feed(tick)

		switch tick {
		case 70:
			// Primary checkpoint + truncation mid-run.
			if code, b := primary.post("/admin/checkpoint", nil); code != http.StatusOK {
				t.Fatalf("checkpoint: %d %s", code, b)
			}
		case 90:
			// Forced follower reconnect mid-run.
			if code, b := follower.post("/admin/reconnect", nil); code != http.StatusOK {
				t.Fatalf("reconnect: %d %s", code, b)
			}
		}

		if tick%5 != 0 {
			continue
		}
		ps := primary.stats()
		awaitEpoch(ps["epoch"].(float64), ps["clock"].(float64))
		compare()
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d epochs compared", checked)
	}

	// The truncation really deleted segments (the point of checkpointing
	// with tiny segments), and the follower saw the forced reconnect.
	ps := primary.stats()
	if segs := ps["wal_segments"].(float64); segs > 20 {
		t.Errorf("wal_segments = %v; truncation never bit", segs)
	}
	fs := follower.stats()
	if fs["replication_reconnects"].(float64) < 1 {
		t.Errorf("follower never counted the forced reconnect: %v", fs)
	}
	if fs["replication_connected"] != true {
		t.Errorf("follower not connected at end: %v", fs)
	}

	// Writes on the follower are forbidden.
	if code, _ := follower.post("/observe", observeRequest{Observations: e2eObservations(1), Tick: 0}); code != http.StatusForbidden {
		t.Errorf("follower observe: %d, want 403", code)
	}
	if code, _ := follower.post("/tick", tickRequest{Now: 999}); code != http.StatusForbidden {
		t.Errorf("follower tick: %d, want 403", code)
	}

	// A second follower attaching after the truncation must bootstrap
	// from the checkpoint and converge to the same answers.
	late := startDaemon(t, bin, "-follow", primary.base)
	deadline := time.Now().Add(20 * time.Second)
	for {
		ls := late.stats()
		if ls["replication_bootstraps"].(float64) >= 1 && ls["epoch"] == ps["epoch"] && ls["clock"] == ps["clock"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late follower never converged: %v\nlogs:\n%s", ls, late.logs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, path := range []string{"/topk", "/paths"} {
		_, pb := primary.get(path)
		_, lb := late.get(path)
		if !bytes.Equal(pb, lb) {
			t.Fatalf("late follower %s diverged:\nprimary: %s\nlate:    %s", path, pb, lb)
		}
	}

	// Graceful shutdown all around; non-zero exits would mean lost state.
	for _, d := range []*daemon{late, follower, primary} {
		d.stop()
		if code := d.cmd.ProcessState.ExitCode(); code != 0 {
			t.Errorf("daemon exited %d; logs:\n%s", code, d.logs)
		}
	}
}

package gateway

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"hotpaths/internal/flightrec"
)

// eventBaseline returns the newest seq in the process-global ring, so a
// test counts only its own events.
func eventBaseline() uint64 {
	evs := flightrec.Default.Snapshot("", time.Time{}, 0)
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].Seq
}

// debugEvents fetches one type through GET /debug/events — the surface
// `hotpaths fleet` polls — keeping events newer than the baseline.
func debugEvents(t *testing.T, typ string, after uint64) []map[string]any {
	t.Helper()
	mux := http.NewServeMux()
	flightrec.Default.RegisterDebug(mux)
	rec := doReq(t, mux, http.MethodGet, "/debug/events?type="+typ, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events: %d %s", rec.Code, rec.Body.String())
	}
	var all []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	for _, ev := range all {
		if seq, _ := ev["seq"].(float64); uint64(seq) > after {
			out = append(out, ev)
		}
	}
	return out
}

// TestTopologyMismatchEventExactlyOnce: a misdeclared partition stays
// misdeclared on every probe round, but only the first detection is an
// event — repeated probes of the same broken state record nothing new.
func TestTopologyMismatchEventExactlyOnce(t *testing.T) {
	base := eventBaseline()
	fleet := newFakeFleet(t, 2)
	fleet[1].id = 0 // daemon thinks it is partition 0; table says 1
	g := newTestGateway(t, fleet, -1)

	// New probed once; probe the same broken fleet a few more times.
	for i := 0; i < 3; i++ {
		g.probeAll()
	}
	evs := debugEvents(t, flightrec.EvTopologyMismatch, base)
	if len(evs) != 1 {
		t.Fatalf("gateway_topology_mismatch events over 4 probe rounds = %d, want exactly 1: %v", len(evs), evs)
	}
	attrs, _ := evs[0]["attrs"].(map[string]any)
	if attrs["declared_id"] != float64(0) || attrs["assigned_id"] != float64(1) {
		t.Errorf("mismatch attrs = %v, want declared_id=0 assigned_id=1", attrs)
	}

	// The stable degraded-cause token distinguishes the mismatch from a
	// plain dead partition.
	rec := doReq(t, g.Handler(), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz: %d, want 503", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["reason"] != "topology_mismatch" {
		t.Errorf("healthz reason = %v, want topology_mismatch", body["reason"])
	}
}

// TestHealthzReasonAndVerbose: a dead partition yields the
// partition_unhealthy token, and ?verbose=1 breaks health down by
// component with the SLO burn attached.
func TestHealthzReasonAndVerbose(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	rec := doReq(t, h, http.MethodGet, "/healthz?verbose=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy fleet: %d %s", rec.Code, rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if _, hasReason := body["reason"]; hasReason {
		t.Errorf("healthy body carries a reason: %v", body)
	}
	comps, _ := body["components"].(map[string]any)
	for _, name := range []string{"topology", "slo"} {
		comp, _ := comps[name].(map[string]any)
		if comp == nil || comp["status"] != "ok" {
			t.Errorf("component %s = %v, want status ok", name, comps[name])
		}
	}

	fleet[1].failing.Store(true)
	g.probeAll()
	rec = doReq(t, h, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded fleet: %d", rec.Code)
	}
	body = map[string]any{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["reason"] != "partition_unhealthy" {
		t.Errorf("healthz reason = %v, want partition_unhealthy", body["reason"])
	}
}

// TestGatewayHealthTransitionEvents: the gateway-level verdict flip is
// one event per transition across many polls, and the partition-level
// flip from the prober is likewise recorded once.
func TestGatewayHealthTransitionEvents(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	// Settle the gateway-level state (unknown -> ok).
	doReq(t, h, http.MethodGet, "/healthz", nil)

	base := eventBaseline()
	fleet[1].failing.Store(true)
	g.probeAll() // partition 1 flips: one partition-level transition
	for i := 0; i < 3; i++ {
		doReq(t, h, http.MethodGet, "/healthz", nil)
	}
	evs := debugEvents(t, flightrec.EvHealthTransition, base)
	var partition, gateway int
	for _, ev := range evs {
		attrs, _ := ev["attrs"].(map[string]any)
		switch attrs["component"] {
		case "partition":
			partition++
		case "gateway":
			gateway++
		}
	}
	if partition != 1 || gateway != 1 {
		t.Fatalf("health_transition events: partition=%d gateway=%d, want 1 and 1: %v", partition, gateway, evs)
	}
}

package raytrace

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/uncertainty"
)

// Integration of the filter with the (ε,δ) Gaussian tolerance model of
// Section 4.1: the per-point tolerance rectangles are strictly tighter than
// the deterministic ε squares, so every motion path the filter certifies
// under (ε,δ) also satisfies the plain-ε closeness invariant — and the
// filter reports at least as often as the deterministic one.
func TestGaussianToleranceTighterThanFixed(t *testing.T) {
	const (
		eps   = 8.0
		delta = 0.05
		sigma = 1.0
	)
	tol := func(tp trajectory.TimePoint) geom.Rect {
		m := uncertainty.Measurement{Mean: tp.P, SigmaX: sigma, SigmaY: sigma}
		r, err := uncertainty.ToleranceRect(m, eps, delta)
		if err != nil {
			t.Fatalf("tolerance rect: %v", err)
		}
		// Tightness: the Gaussian rect must sit inside the ε square.
		if !geom.RectAround(tp.P, eps).ContainsRect(r) {
			t.Fatalf("gaussian rect %v escapes the eps square", r)
		}
		return r
	}

	rng := rand.New(rand.NewSource(61))
	pts := randomWalk(rng, 300, 4)
	fu := NewWithTolerance(pts[0], tol)
	fd := New(pts[0], eps)

	var uncertainReports, fixedReports int
	recorded := []trajectory.TimePoint{pts[0]}
	for _, p := range pts[1:] {
		recorded = append(recorded, p)
		st, report, err := fu.Process(p)
		if err != nil {
			t.Fatal(err)
		}
		for report {
			uncertainReports++
			// Plain-ε closeness must hold for the certified path.
			mp := trajectory.MotionPath{S: st.Start, E: st.FSA.Centroid(), Ts: st.Ts, Te: st.Te}
			for _, m := range recorded {
				if m.T < st.Ts || m.T > st.Te {
					continue
				}
				if d := mp.LocationAt(m.T).MaxDist(m.P); d > eps+1e-9 {
					t.Fatalf("(eps,delta) path violates plain-eps closeness: %v", d)
				}
			}
			st, report, err = fu.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
			if err != nil {
				t.Fatal(err)
			}
		}
		std, reportd, err := fd.Process(p)
		if err != nil {
			t.Fatal(err)
		}
		for reportd {
			fixedReports++
			std, reportd, err = fd.Respond(trajectory.TP(std.FSA.Centroid(), std.Te))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if uncertainReports < fixedReports {
		t.Errorf("(eps,delta) filter reported %d times, fixed filter %d; tighter tolerance cannot report less",
			uncertainReports, fixedReports)
	}
}

// A per-point tolerance that degenerates over time must still produce valid
// (non-inverted) states.
func TestShrinkingToleranceStates(t *testing.T) {
	i := 0
	tol := func(tp trajectory.TimePoint) geom.Rect {
		i++
		half := 10.0 / float64(1+i%7)
		return geom.RectAround(tp.P, half)
	}
	f := NewWithTolerance(tp(0, 0, 0), tol)
	rng := rand.New(rand.NewSource(71))
	cur := geom.Pt(0, 0)
	for k := 1; k <= 500; k++ {
		cur = cur.Add(geom.Pt(rng.Float64()*10-2, rng.Float64()*8-4))
		st, report, err := f.Process(trajectory.TP(cur, trajectory.Time(k)))
		if err != nil {
			t.Fatal(err)
		}
		for report {
			if st.Te <= st.Ts {
				t.Fatalf("inverted state [%d,%d]", st.Ts, st.Te)
			}
			if st.FSA.Empty() {
				t.Fatal("empty FSA reported")
			}
			st, report, err = f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Fixture for the batchclock analyzer: hot-path loops meter per batch,
// never per record.
package a

import (
	"context"
	"time"

	"hotpaths/internal/flightrec"
	"hotpaths/internal/metrics"
	"hotpaths/internal/tracing"
)

type record struct{ v float64 }

func perRecordClock(recs []record) time.Duration {
	var total time.Duration
	for range recs {
		start := time.Now()        // want `time\.Now inside a loop`
		total += time.Since(start) // want `time\.Since inside a loop`
	}
	return total
}

func perRecordObserve(recs []record, h *metrics.Histogram) {
	for _, r := range recs {
		h.Observe(r.v) // want `histogram Observe inside a loop`
	}
}

func perRecordObserveSince(recs []record, h *metrics.Histogram, t0 time.Time) {
	for i := 0; i < len(recs); i++ {
		h.ObserveSince(t0) // want `histogram ObserveSince inside a loop`
	}
}

func perRecordSpan(ctx context.Context, recs []record) {
	for range recs {
		_, span := tracing.StartSpan(ctx, "record") // want `starting a span inside a loop`
		span.End()
	}
}

// Allowed: the contract's shape — one clock pair and one observation
// bracketing the whole batch.
func perBatch(recs []record, h *metrics.Histogram) {
	start := time.Now()
	var sum float64
	for _, r := range recs {
		sum += r.v
	}
	h.Observe(time.Since(start).Seconds())
	_ = sum
}

// Allowed: per-record counter increments are a single atomic add.
func perRecordCount(recs []record, c *metrics.Counter) {
	for range recs {
		c.Inc()
	}
}

// Allowed: a goroutine launched per shard times its own work at that
// coarser granularity (the gateway's scatter loop).
func perShard(shards []chan []record, h *metrics.Histogram) {
	for _, ch := range shards {
		ch := ch
		go func() {
			start := time.Now()
			<-ch
			h.ObserveSince(start)
		}()
	}
}

func perRecordEvent(recs []record, rec *flightrec.Recorder) {
	for range recs {
		rec.Record("record_ingested") // want `flight-recorder Record inside a loop`
	}
}

func perRecordEventCtx(ctx context.Context, recs []record, rec *flightrec.Recorder) {
	for _, r := range recs {
		rec.RecordCtx(ctx, "record_ingested", flightrec.KV("v", r.v)) // want `flight-recorder RecordCtx inside a loop`
	}
}

// Allowed: the recorder's contract — one event summarising the batch,
// emitted after the loop.
func perBatchEvent(ctx context.Context, recs []record, rec *flightrec.Recorder) {
	var sum float64
	for _, r := range recs {
		sum += r.v
	}
	rec.RecordCtx(ctx, "batch_ingested",
		flightrec.KV("records", len(recs)), flightrec.KV("sum", sum))
}

// Allowed: a reasoned suppression directive waives the finding.
func suppressed(recs []record) {
	for range recs {
		//hotpathsvet:ignore batchclock cold admin path iterating a handful of segments, not the record hot path
		_ = time.Now()
	}
}

// Fixture for the locksnapshot analyzer: no O(paths) snapshots,
// blocking sends, or network I/O inside write-lock critical sections.
package a

import (
	"net/http"
	"sync"
)

type store struct{ data map[string]int }

func (s *store) Snapshot() map[string]int {
	out := make(map[string]int, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

type engine struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	st  *store
	ch  chan int
	cli *http.Client
}

func (e *engine) badSnapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.Snapshot() // want `Snapshot\(\) under the write lock`
}

func (e *engine) badSend() {
	e.rw.Lock()
	e.ch <- 1 // want `channel send while holding the write lock`
	e.rw.Unlock()
}

func (e *engine) badSelectSend() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- 1: // want `select without default around this send`
	case <-e.ch:
	}
}

func (e *engine) badNet(req *http.Request) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.cli.Do(req) // want `network I/O \(http\.Do\) while holding the write lock`
	return err
}

// The *Locked suffix is the repo convention for "caller holds the
// lock": the whole body is a critical section.
func (e *engine) sendLocked() {
	e.ch <- 2 // want `channel send while holding the write lock`
}

// Allowed: compute under the lock, send after releasing it.
func (e *engine) goodSend() {
	e.mu.Lock()
	v := len(e.st.data)
	e.mu.Unlock()
	e.ch <- v
}

// Allowed: a non-blocking send cannot stall writers.
func (e *engine) goodSelectDefault() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- 1:
	default:
	}
}

// Allowed: delegation from a method itself named Snapshot — the
// sanctioned pattern (Durable.Snapshot → sys.Snapshot under d.mu).
func (e *engine) Snapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.Snapshot()
}

// Allowed: RLock sections don't serialise writers against each other.
func (e *engine) goodRead() int {
	e.rw.RLock()
	defer e.rw.RUnlock()
	return e.st.Snapshot()["x"]
}

// Allowed: a reasoned suppression directive waives the finding.
func (e *engine) flushLocked() {
	//hotpathsvet:ignore locksnapshot flush barrier: the receiver always drains, and the lock is what keeps other senders out
	e.ch <- 3
}

package main

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := do(t, h, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	return rec.Body.String()
}

// sampleValue extracts one sample's value; prefix is the full series
// name including its sorted label set. Missing series read as 0 so
// before/after deltas work on first exposure.
func sampleValue(body, prefix string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			var v float64
			fmt.Sscanf(line[len(prefix)+1:], "%g", &v)
			return v
		}
	}
	return 0
}

// TestMetricsEndpoint is the exposition golden test: after real traffic,
// GET /metrics must serve well-formed Prometheus text covering the
// engine, subscription, and per-route HTTP families, with counters that
// moved by exactly the traffic sent. Deltas, not absolute values — the
// registry is process-global and other tests in this package share it.
func TestMetricsEndpoint(t *testing.T) {
	h := newTestHandler(t)
	before := scrapeMetrics(t, h)

	feedZigZag(t, h) // 40 POSTs to /observe, 80 observations, 40 ticks
	do(t, h, http.MethodGet, "/topk", nil)
	do(t, h, http.MethodGet, "/stats", nil)

	body := scrapeMetrics(t, h)
	checkPrometheusText(t, body)

	for _, family := range []string{
		"hotpaths_engine_observe_batch_seconds",
		"hotpaths_engine_tick_seconds",
		"hotpaths_engine_epoch_barrier_seconds",
		"hotpaths_engine_queue_depth",
		"hotpaths_engine_observations_total",
		"hotpaths_engine_epochs_total",
		"hotpaths_subscribers",
		"hotpaths_http_request_seconds",
		"hotpaths_http_requests_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("exposition is missing family %s", family)
		}
	}

	for _, tc := range []struct {
		series string
		delta  float64
	}{
		{`hotpaths_http_requests_total{code="2xx",route="/observe"}`, 40},
		{`hotpaths_http_request_seconds_count{route="/observe"}`, 40},
		{`hotpaths_http_requests_total{code="2xx",route="/topk"}`, 1},
		{`hotpaths_http_requests_total{code="2xx",route="/stats"}`, 1},
		{`hotpaths_engine_observations_total`, 80},
	} {
		got := sampleValue(body, tc.series) - sampleValue(before, tc.series)
		if got != tc.delta {
			t.Errorf("%s moved by %g, want %g", tc.series, got, tc.delta)
		}
	}
}

// TestMetricsStatusClasses checks the middleware's error path: a
// malformed request on an instrumented route lands in that route's 4xx
// counter, not the 2xx one.
func TestMetricsStatusClasses(t *testing.T) {
	h := newTestHandler(t)
	before := scrapeMetrics(t, h)

	rec := do(t, h, http.MethodPost, "/observe", map[string]any{"observations": "not-a-list"})
	if rec.Code/100 != 4 {
		t.Fatalf("malformed observe: %d, want 4xx", rec.Code)
	}

	body := scrapeMetrics(t, h)
	series := `hotpaths_http_requests_total{code="4xx",route="/observe"}`
	if got := sampleValue(body, series) - sampleValue(before, series); got != 1 {
		t.Errorf("%s moved by %g, want 1", series, got)
	}
}

// TestAdminHandler covers the -pprof listener's mux: /metrics and the
// pprof index must both answer.
func TestAdminHandler(t *testing.T) {
	h := adminHandler()
	if rec := do(t, h, http.MethodGet, "/metrics", nil); rec.Code != http.StatusOK {
		t.Fatalf("admin GET /metrics: %d", rec.Code)
	}
	rec := do(t, h, http.MethodGet, "/debug/pprof/", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

// checkPrometheusText is a minimal exposition-format validator: every
// sample line is `name[{labels}] value`, every sample's family has a
// TYPE comment, histogram bucket bounds are strictly increasing, and
// every histogram closes with a +Inf bucket.
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	if !strings.HasSuffix(body, "\n") {
		t.Error("exposition does not end in a newline")
	}
	typed := map[string]string{}
	var lastHist string
	var lastBucket float64
	open := false // a bucket series started and has not reached +Inf yet
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		var value float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &value); err != nil {
			t.Fatalf("line %d: unparsable value in %q: %v", ln+1, line, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if _, ok := typed[base]; ok {
					family = base
					break
				}
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE comment", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") && family != name {
			if family != lastHist && open {
				t.Fatalf("histogram %s has no +Inf bucket", lastHist)
			}
			lastHist = family
			j := strings.Index(line, `le="`)
			if j < 0 {
				t.Fatalf("line %d: bucket without le label: %q", ln+1, line)
			}
			le := line[j+4:]
			le = le[:strings.IndexByte(le, '"')]
			if le == "+Inf" {
				open = false
				continue
			}
			var bound float64
			fmt.Sscanf(le, "%g", &bound)
			switch {
			case !open: // first finite bucket of a label set
				open, lastBucket = true, bound
			case bound <= lastBucket:
				t.Fatalf("histogram %s: bucket bounds not increasing at le=%q", family, le)
			default:
				lastBucket = bound
			}
		}
	}
	if open {
		t.Fatalf("histogram %s has no +Inf bucket", lastHist)
	}
}

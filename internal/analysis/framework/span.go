package framework

import (
	"go/ast"
	"go/types"
)

// IsSpanStart reports whether call starts a tracing span: a call to a
// function or method named StartSpan, StartRequest or StartRoot whose
// second result is a *Span defined in a package named "tracing".
// Matching by shape rather than import path keeps fixture stand-ins in
// scope alongside hotpaths/internal/tracing itself.
func IsSpanStart(info *types.Info, call *ast.CallExpr) bool {
	fn := Callee(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "StartSpan", "StartRequest", "StartRoot":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	ptr, ok := sig.Results().At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Span" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "tracing"
}

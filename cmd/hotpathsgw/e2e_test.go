//go:build gateway_e2e

// The multi-process gateway golden test: four real partitioned hotpathsd
// primaries behind a real hotpathsgw, compared against a single hotpathsd
// fed the same workload, over real TCP. It is behind the gateway_e2e
// build tag because it builds binaries and spawns processes — CI runs it
// as its own step (see .github/workflows/ci.yml); locally:
//
//	go test -race -tags gateway_e2e -run TestGatewayE2E ./cmd/hotpathsgw
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hotpaths"
	"hotpaths/internal/partition"
)

const e2ePartitions = 4

// buildBinary compiles one command (with -race, so the spawned processes
// are themselves race-checked) into a temp dir.
func buildBinary(t *testing.T, pkgDir, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-race", "-o", bin, pkgDir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type daemon struct {
	t       *testing.T
	name    string
	bin     string
	args    []string
	addr    string
	cmd     *exec.Cmd
	base    string
	logs    *bytes.Buffer
	stopped bool
}

// startDaemon launches bin with a fresh ephemeral address and waits for
// /healthz to answer (any status: the gateway legitimately reports 503
// until its fleet is probed healthy).
func startDaemon(t *testing.T, name, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{t: t, name: name, bin: bin, args: args, addr: freeAddr(t)}
	d.start()
	t.Cleanup(func() { d.stop(syscall.SIGTERM) })
	return d
}

func (d *daemon) start() {
	d.t.Helper()
	d.logs = &bytes.Buffer{}
	d.cmd = exec.Command(d.bin, append([]string{"-addr", d.addr}, d.args...)...)
	d.cmd.Stderr = d.logs
	d.cmd.Stdout = d.logs
	if err := d.cmd.Start(); err != nil {
		d.t.Fatal(err)
	}
	d.base = "http://" + d.addr
	d.stopped = false
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("%s at %s never became ready; logs:\n%s", d.name, d.base, d.logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) stop(sig syscall.Signal) {
	if d.cmd.Process == nil || d.stopped {
		return
	}
	d.stopped = true
	d.cmd.Process.Signal(sig)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

func (d *daemon) get(path string) (int, http.Header, []byte) {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("%s: GET %s: %v; logs:\n%s", d.name, path, err, d.logs)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("%s: GET %s: read body: %v", d.name, path, err)
	}
	return resp.StatusCode, resp.Header, b
}

func (d *daemon) post(path string, body any) (int, []byte) {
	d.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			d.t.Fatal(err)
		}
	}
	resp, err := http.Post(d.base+path, "application/json", &buf)
	if err != nil {
		d.t.Fatalf("%s: POST %s: %v; logs:\n%s", d.name, path, err, d.logs)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

type observeReq struct {
	Observations []hotpaths.ObservationJSON `json:"observations"`
	Tick         int64                      `json:"tick,omitempty"`
}

// e2eLanes assigns each of 8 spatially disjoint lanes two objects owned
// by partition lane mod 4, so every trajectory lives on one primary and
// every primary owns traffic.
func e2eLanes() [][]int {
	lanes := make([][]int, 8)
	next := make(map[int][]int)
	for id := 1; len(next[0]) < 4 || len(next[1]) < 4 || len(next[2]) < 4 || len(next[3]) < 4; id++ {
		p := partition.Index(id, e2ePartitions)
		next[p] = append(next[p], id)
	}
	for l := range lanes {
		p := l % e2ePartitions
		lanes[l] = next[p][:2]
		if l >= e2ePartitions {
			lanes[l] = next[p][2:4]
		}
	}
	return lanes
}

func e2eBatch(lanes [][]int, now int64) []hotpaths.ObservationJSON {
	var batch []hotpaths.ObservationJSON
	for l, objs := range lanes {
		base := float64(200 * l)
		x := float64(now) * 6
		y := base
		if (now/5)%2 == 0 {
			y = base + 40
		}
		batch = append(batch,
			hotpaths.ObservationJSON{Object: objs[0], X: x, Y: y, T: now},
			hotpaths.ObservationJSON{Object: objs[1], X: x, Y: y + 0.5, T: now},
		)
	}
	return batch
}

var e2eQueries = []string{
	"/topk",
	"/paths",
	"/paths.geojson",
	"/topk?sort=score&k=5",
	"/paths?min_hotness=2",
	"/paths?bbox=0,0,400,450&sort=score",
}

// TestGatewayE2E is the acceptance test for horizontal write scaling: a
// 4-partition fleet of real hotpathsd -wal processes behind a real
// hotpathsgw answers every query byte-identically to one hotpathsd fed
// the same interleaved workload — across a partition outage (degraded
// health, partial reads) and its WAL-backed recovery.
func TestGatewayE2E(t *testing.T) {
	hotpathsd := buildBinary(t, "../hotpathsd", "hotpathsd")
	hotpathsgw := buildBinary(t, ".", "hotpathsgw")
	hotpathsCLI := buildBinary(t, "../hotpaths", "hotpaths")

	pipeline := []string{"-eps", "5", "-w", "100", "-epoch", "10", "-k", "10",
		"-bounds", "-100,-100,2000,2000"}
	parts := make([]*daemon, e2ePartitions)
	urls := make([]string, e2ePartitions)
	partAdmins := make([]string, e2ePartitions)
	frDump := t.TempDir()
	for i := range parts {
		partAdmins[i] = freeAddr(t)
		args := append([]string{
			"-wal", filepath.Join(t.TempDir(), "wal"),
			"-fsync", "1ms",
			"-partition-count", fmt.Sprint(e2ePartitions),
			"-partition-id", fmt.Sprint(i),
			"-pprof", partAdmins[i],
			"-trace-sample", "1",
			"-flightrec-dump", frDump,
		}, pipeline...)
		parts[i] = startDaemon(t, fmt.Sprintf("partition-%d", i), hotpathsd, args...)
		urls[i] = parts[i].base
	}
	gwAdmin := freeAddr(t)
	gw := startDaemon(t, "gateway", hotpathsgw,
		"-partitions", strings.Join(urls, ","), "-k", "10", "-probe", "25ms",
		"-pprof", gwAdmin, "-trace-sample", "1")
	ref := startDaemon(t, "reference", hotpathsd, pipeline...)

	waitHealth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			code, _, _ := gw.get("/healthz")
			if code == want {
				return
			}
			if time.Now().After(deadline) {
				_, _, b := gw.get("/healthz")
				t.Fatalf("gateway /healthz never reached %d: %s\nlogs:\n%s", want, b, gw.logs)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitHealth(http.StatusOK)

	lanes := e2eLanes()
	feed := func(tick int64) {
		t.Helper()
		req := observeReq{Observations: e2eBatch(lanes, tick), Tick: tick}
		if code, b := gw.post("/observe", req); code != http.StatusOK {
			t.Fatalf("gateway observe t=%d: %d %s\nlogs:\n%s", tick, code, b, gw.logs)
		}
		if code, b := ref.post("/observe", req); code != http.StatusOK {
			t.Fatalf("reference observe t=%d: %d %s", tick, code, b)
		}
	}
	compare := func(tick int64) {
		t.Helper()
		for _, q := range e2eQueries {
			gc, gh, gb := gw.get(q)
			rc, rh, rb := ref.get(q)
			if gc != http.StatusOK || rc != http.StatusOK {
				t.Fatalf("t=%d %s: gateway %d, reference %d (%s / %s)", tick, q, gc, rc, gb, rb)
			}
			if ge, re := gh.Get(hotpaths.EpochHeader), rh.Get(hotpaths.EpochHeader); ge != re {
				t.Fatalf("t=%d %s: epoch header %q vs %q", tick, q, ge, re)
			}
			if !bytes.Equal(gb, rb) {
				t.Fatalf("t=%d %s diverged:\ngateway:   %s\nreference: %s", tick, q, gb, rb)
			}
		}
	}

	var tick int64
	for tick = 1; tick <= 40; tick++ {
		feed(tick)
		if tick%10 == 0 {
			compare(tick)
		}
	}

	// Outage: partition 2 goes away cleanly (its WAL holds every
	// acknowledged record). Health must degrade and reads must turn
	// partial — visibly, via the 206 + X-Hotpaths-Partial contract.
	parts[2].stop(syscall.SIGTERM)
	waitHealth(http.StatusServiceUnavailable)
	if code, b := gw.post("/tick", map[string]any{"now": tick}); code != http.StatusServiceUnavailable {
		t.Fatalf("tick with partition down: %d %s, want 503", code, b)
	}
	// The barrier tick reached the live partitions, so drive the
	// reference across the same boundary before comparing anything else.
	if code, b := ref.post("/tick", map[string]any{"now": tick}); code != http.StatusOK {
		t.Fatalf("reference tick: %d %s", code, b)
	}
	tick++
	code, h, _ := gw.get("/paths")
	if code != http.StatusPartialContent {
		t.Fatalf("paths with partition down: %d, want 206", code)
	}
	if got := h.Get(hotpaths.PartialHeader); got != "2" {
		t.Fatalf("%s = %q, want \"2\"", hotpaths.PartialHeader, got)
	}

	// Recovery: the same WAL directory brings the partition's state back.
	parts[2].start()
	waitHealth(http.StatusOK)

	// A /watch stream opened on the quiesced fleet must mirror the
	// reference's stream from its baseline on.
	gwWatch, err := http.Get(gw.base + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer gwWatch.Body.Close()
	refWatch, err := http.Get(ref.base + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer refWatch.Body.Close()
	gwRd, refRd := bufio.NewReader(gwWatch.Body), bufio.NewReader(refWatch.Body)

	for stop := tick + 30; tick <= stop; tick++ {
		feed(tick)
		if tick%10 == 0 {
			compare(tick)
		}
	}

	// Baseline plus the three epoch boundaries crossed while watching.
	for ev := 0; ev < 4; ev++ {
		g, err := readSSEEvent(gwRd)
		if err != nil {
			t.Fatalf("gateway watch event %d: %v\nlogs:\n%s", ev, err, gw.logs)
		}
		r, err := readSSEEvent(refRd)
		if err != nil {
			t.Fatalf("reference watch event %d: %v", ev, err)
		}
		if g != r {
			t.Fatalf("watch event %d diverged:\ngateway:   %q\nreference: %q", ev, g, r)
		}
	}

	// Distributed tracing: one write through the gateway must produce ONE
	// trace — a known ID minted here, continued by the gateway's root
	// span, propagated to every partition leg, and retrievable from every
	// process's /debug/traces ring. The traced tick lands on an epoch
	// boundary so the partitions' engine.tick spans fire too.
	tick = (tick/10 + 1) * 10
	checkDistributedTrace(t, gw, gwAdmin, parts, partAdmins, tick)
	tick++

	// Misrouted writes die at the daemon, not in silent state forks: an
	// observation sent directly to the wrong partition is rejected.
	wrong := lanes[0][0] // owned by partition 0
	if code, b := parts[1].post("/observe", observeReq{
		Observations: []hotpaths.ObservationJSON{{Object: wrong, X: 1, Y: 1, T: tick}},
	}); code != http.StatusBadRequest {
		t.Fatalf("misrouted observe: %d %s, want 400", code, b)
	}

	// Flight-recorder correlation + the fleet ops view: a second outage,
	// observed end to end through `hotpaths fleet -once`.
	checkFleetTimeline(t, hotpathsCLI, hotpathsgw, urls, parts, partAdmins)

	// Graceful shutdown all around.
	for _, d := range append(append([]*daemon{}, parts...), gw, ref) {
		d.stop(syscall.SIGTERM)
		if code := d.cmd.ProcessState.ExitCode(); code != 0 {
			t.Errorf("%s exited %d; logs:\n%s", d.name, code, d.logs)
		}
	}

	// The -flightrec-dump workflow: every partition (including the one
	// SIGTERMed mid-test) snapshotted its event ring to disk on shutdown.
	dumps, err := filepath.Glob(filepath.Join(frDump, "flightrec-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) < e2ePartitions {
		t.Errorf("flight-recorder dumps = %d, want at least %d (one per partition shutdown)", len(dumps), e2ePartitions)
	}
}

// fleetSnap mirrors `hotpaths fleet -once` output.
type fleetSnap struct {
	Nodes []struct {
		Label  string   `json:"label"`
		Errors []string `json:"errors"`
	} `json:"nodes"`
	Timeline []struct {
		Node     string         `json:"node"`
		UnixNano int64          `json:"unix_nano"`
		Type     string         `json:"type"`
		TraceID  string         `json:"trace_id"`
		Attrs    map[string]any `json:"attrs"`
	} `json:"timeline"`
}

// checkFleetTimeline forces a partition outage in front of a prober-less
// gateway — so the first request to notice the dead partition is a
// traced read, making the 206 and the partition health flip land in the
// same trace — then snapshots the whole fleet with `hotpaths fleet
// -once` and asserts the merged timeline shows the correlated pair.
func checkFleetTimeline(t *testing.T, hotpathsCLI, hotpathsgw string, urls []string, parts []*daemon, partAdmins []string) {
	t.Helper()

	// A dedicated gateway with the background prober disabled: health
	// flips can only come from request-path failures, so the traced read
	// below deterministically wins the race to record the transition.
	gw2Admin := freeAddr(t)
	gw2 := startDaemon(t, "gateway-2", hotpathsgw,
		"-partitions", strings.Join(urls, ","), "-k", "10", "-probe", "-1s",
		"-pprof", gw2Admin, "-trace-sample", "1")

	// Partition 3 goes away; nothing notices until a request tries it.
	parts[3].stop(syscall.SIGTERM)

	const traceID = "7ad6b7169203331d38823852de95b154"
	hreq, err := http.NewRequest(http.MethodGet, gw2.base+"/paths", nil)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("traced read with partition 3 down: %d, want 206\nlogs:\n%s", resp.StatusCode, gw2.logs)
	}
	if got := resp.Header.Get(hotpaths.PartialHeader); got != "3" {
		t.Fatalf("%s = %q, want \"3\"", hotpaths.PartialHeader, got)
	}

	// Snapshot the fleet: the live partitions, the dead one (the tool must
	// tolerate it), and the prober-less gateway whose ring holds the
	// correlated events. CI sets FLEET_SNAPSHOT_PATH to archive the file.
	snapPath := os.Getenv("FLEET_SNAPSHOT_PATH")
	if snapPath == "" {
		snapPath = filepath.Join(t.TempDir(), "fleet.json")
	}
	args := []string{"fleet", "-once", "-events", "200", "-out", snapPath,
		"gw2=" + gw2.base + "," + "http://" + gw2Admin}
	for i, d := range parts {
		args = append(args, fmt.Sprintf("p%d=%s,http://%s", i, d.base, partAdmins[i]))
	}
	out, err := exec.Command(hotpathsCLI, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("hotpaths fleet -once: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap fleetSnap
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("decode fleet snapshot: %v\n%s", err, raw)
	}

	// The dead node is reported unreachable, not fatal.
	var deadSeen bool
	for _, n := range snap.Nodes {
		if n.Label == "p3" {
			deadSeen = len(n.Errors) > 0
		}
	}
	if !deadSeen {
		t.Errorf("snapshot does not report the dead partition's poll errors: %s", raw)
	}

	// One merged, time-ordered timeline across processes...
	nodes := map[string]bool{}
	for i, ev := range snap.Timeline {
		nodes[ev.Node] = true
		if i > 0 && ev.UnixNano < snap.Timeline[i-1].UnixNano {
			t.Fatalf("timeline out of order at %d: %d after %d", i, ev.UnixNano, snap.Timeline[i-1].UnixNano)
		}
	}
	if len(nodes) < 2 {
		t.Errorf("merged timeline covers %d node(s), want events from several processes: %s", len(nodes), raw)
	}

	// ...where the outage shows up as a correlated pair under the minted
	// trace: the gateway's 206 and the partition health flip it caused.
	var partials, flips int
	for _, ev := range snap.Timeline {
		if ev.Node != "gw2" || ev.TraceID != traceID {
			continue
		}
		switch ev.Type {
		case "gateway_partial_read":
			partials++
			if ev.Attrs["missing_partitions"] != "3" {
				t.Errorf("partial-read event names partitions %v, want \"3\"", ev.Attrs["missing_partitions"])
			}
		case "health_transition":
			flips++
			if ev.Attrs["component"] != "partition" || ev.Attrs["partition"] != float64(3) {
				t.Errorf("health transition attrs = %v, want component=partition partition=3", ev.Attrs)
			}
		}
	}
	if partials != 1 || flips != 1 {
		t.Fatalf("correlated events under trace %s: %d partial reads, %d health flips, want exactly 1 of each\n%s",
			traceID, partials, flips, raw)
	}
	gw2.stop(syscall.SIGTERM)
}

// e2eSpan mirrors the /debug/traces/{id} span JSON.
type e2eSpan struct {
	TraceID  string         `json:"trace_id"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id"`
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
}

// fetchTrace polls an admin listener's /debug/traces/{id} until the trace
// is committed (commits land just after the response is sent, so the
// first poll can legitimately race it).
func fetchTrace(t *testing.T, admin, id string) []e2eSpan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + admin + "/debug/traces/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			var detail struct {
				Spans []e2eSpan `json:"spans"`
			}
			err := json.NewDecoder(resp.Body).Decode(&detail)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decode trace from %s: %v", admin, err)
			}
			return detail.Spans
		}
		if err == nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared on %s (last err %v)", id, admin, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// checkDistributedTrace sends one traced write through the gateway and
// asserts the whole fleet agrees on the trace: the gateway continues the
// minted trace ID, opens one child span per partition leg, and every
// partition's ring holds its server, engine and WAL spans under the same
// ID, parent-linked to a gateway leg.
func checkDistributedTrace(t *testing.T, gw *daemon, gwAdmin string, parts []*daemon, partAdmins []string, tick int64) {
	t.Helper()
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	traceparent := "00-" + traceID + "-00f067aa0ba902b7-01"

	var buf bytes.Buffer
	req := observeReq{Observations: e2eBatch(e2eLanes(), tick), Tick: tick}
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, gw.base+"/observe_batch", &buf)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced observe_batch: %d %s\nlogs:\n%s", resp.StatusCode, b, gw.logs)
	}

	// Gateway half: the /observe_batch root continuing the minted ID, plus
	// one leg per partition for the batch and one per partition for the
	// epoch-barrier tick that rode along.
	gwSpans := fetchTrace(t, gwAdmin, traceID)
	legIDs := map[string]bool{}
	var sawRoot bool
	for _, s := range gwSpans {
		if s.TraceID != traceID {
			t.Fatalf("gateway span %s carries trace %s, want %s", s.Name, s.TraceID, traceID)
		}
		switch s.Name {
		case "/observe_batch":
			sawRoot = true
		case "partition.leg":
			legIDs[s.SpanID] = true
		}
	}
	if !sawRoot {
		t.Fatalf("gateway trace has no /observe_batch root span: %+v", gwSpans)
	}
	if len(legIDs) != 2*len(parts) {
		t.Fatalf("gateway trace has %d partition legs, want %d (observe+tick per partition): %+v",
			len(legIDs), 2*len(parts), gwSpans)
	}

	// Partition halves: every process holds its server, engine and WAL
	// spans under the same ID, parented by one of the gateway's legs.
	for i, admin := range partAdmins {
		spans := fetchTrace(t, admin, traceID)
		names := map[string]int{}
		for _, s := range spans {
			if s.TraceID != traceID {
				t.Fatalf("partition %d span %s carries trace %s, want %s", i, s.Name, s.TraceID, traceID)
			}
			names[s.Name]++
			if s.Name == "/observe" || s.Name == "/tick" {
				if !legIDs[s.ParentID] {
					t.Fatalf("partition %d %s span parent %q is not a gateway leg", i, s.Name, s.ParentID)
				}
			}
		}
		for _, want := range []string{"/observe", "engine.observe_batch", "/tick", "engine.tick", "wal.append"} {
			if names[want] == 0 {
				t.Fatalf("partition %d trace is missing a %s span; got %v", i, want, names)
			}
		}
	}
}

func readSSEEvent(rd *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return "", err
		}
		if line == "\n" {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

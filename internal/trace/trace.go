// Package trace serialises measurement streams to a line-oriented text
// format and replays them, decoupling workload generation from discovery
// runs. A recorded trace makes experiments exactly reproducible across
// machines and lets external datasets be fed into the system.
//
// Format, one measurement per line, timestamps non-decreasing:
//
//	<timestamp> <objectID> <x> <y>
//
// Lines starting with '#' and blank lines are ignored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/workload"
)

// Record is one replayed measurement.
type Record struct {
	ObjectID int
	TP       trajectory.TimePoint
}

// Writer streams records to an output.
type Writer struct {
	bw    *bufio.Writer
	lastT trajectory.Time
	n     int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write appends one record. Timestamps must be non-decreasing across the
// whole trace (multiple objects may share a timestamp).
func (w *Writer) Write(r Record) error {
	if r.TP.T < w.lastT {
		return fmt.Errorf("trace: timestamp %d after %d; traces must be time-ordered", r.TP.T, w.lastT)
	}
	w.lastT = r.TP.T
	w.n++
	_, err := fmt.Fprintf(w.bw, "%d %d %g %g\n", r.TP.T, r.ObjectID, r.TP.P.X, r.TP.P.Y)
	return err
}

// WriteMeasurement adapts a workload measurement.
func (w *Writer) WriteMeasurement(m workload.Measurement) error {
	return w.Write(Record{ObjectID: m.ObjectID, TP: m.TP})
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output; call before closing the underlying file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from an input.
type Reader struct {
	sc    *bufio.Scanner
	line  int
	lastT trajectory.Time
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next record; io.EOF signals a clean end.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rec Record
		var t int64
		var x, y float64
		if _, err := fmt.Sscanf(line, "%d %d %g %g", &t, &rec.ObjectID, &x, &y); err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		rec.TP = trajectory.TP(geom.Pt(x, y), trajectory.Time(t))
		if rec.TP.T < r.lastT {
			return Record{}, fmt.Errorf("trace: line %d: timestamp %d after %d", r.line, rec.TP.T, r.lastT)
		}
		r.lastT = rec.TP.T
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll consumes the whole trace.
func ReadAll(rd io.Reader) ([]Record, error) {
	r := NewReader(rd)
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Replay feeds the trace to per-timestamp callbacks: batch receives all
// records of one timestamp, then tick is invoked with that timestamp. This
// is the access pattern both the hotpaths.System facade and the simulation
// loop expect.
func Replay(rd io.Reader, batch func([]Record) error, tick func(trajectory.Time) error) error {
	r := NewReader(rd)
	var cur []Record
	var curT trajectory.Time
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		if err := batch(cur); err != nil {
			return err
		}
		if err := tick(curT); err != nil {
			return err
		}
		cur = cur[:0]
		return nil
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		if len(cur) > 0 && rec.TP.T != curT {
			if err := flush(); err != nil {
				return err
			}
		}
		curT = rec.TP.T
		cur = append(cur, rec)
	}
}

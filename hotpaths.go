// Package hotpaths discovers hot motion paths — routes recently followed by
// many moving objects — from streams of imprecise location updates, as
// described in "On-Line Discovery of Hot Motion Paths" (Sacharidis et al.,
// EDBT 2008).
//
// The package exposes the paper's two-tier architecture as an in-process
// streaming System: each observed object runs a RayTrace filter that
// suppresses location updates inside an adaptive spatiotemporal safe area,
// and a coordinator runs the SinglePath strategy over the reported states,
// maintaining motion paths and their hotness over a sliding time window.
//
// Basic use:
//
//	sys, _ := hotpaths.New(hotpaths.Config{
//		Eps:    10,                           // tolerance, metres
//		W:      100,                          // window, timestamps
//		Epoch:  10,                           // coordinator cadence
//		K:      10,                           // top-k to report
//		Bounds: hotpaths.Rect{Max: hotpaths.Pt(16000, 16000)},
//	})
//	for t := int64(1); t <= horizon; t++ {
//		for _, obs := range observationsAt(t) {
//			sys.Observe(obs.Object, obs.X, obs.Y, t)
//		}
//		sys.Tick(t) // advance window; process batch at epoch boundaries
//	}
//	for _, hp := range sys.TopK() {
//		fmt.Println(hp.Start, "->", hp.End, "hotness", hp.Hotness)
//	}
//
// # Querying: Snapshot and Query
//
// The read side of the API is built on immutable snapshots. Snapshot()
// (on System and Engine alike, via the shared Source interface) captures
// the live paths, hotness, clock and counters at one consistent instant;
// the returned Snapshot is safe to share across goroutines and to query
// repeatedly while ingestion continues. A Query composes the selection:
//
//	snap := sys.Snapshot()
//	busy := snap.Query(hotpaths.Query{}.
//		Region(viewport).              // grid-index range scan, not a linear filter
//		MinHotness(3).
//		SortBy(hotpaths.ByScore).
//		K(20))
//
// TopK, HotPaths, Score and WriteGeoJSON are thin wrappers over
// Snapshot(): convenient for one-off reads, but two successive calls may
// straddle an epoch boundary and disagree; take one Snapshot when
// multiple reads must be mutually consistent.
//
// # Watching: Subscribe and Delta
//
// Subscribe turns a Query into a standing query: instead of polling
// snapshots, the caller receives a Delta on a channel at every epoch
// boundary — the paths that entered the result set, left it, or changed
// hotness. The first delta is the query's current result; applying each
// delta to the previous result (Delta.Apply) reproduces exactly what
// Snapshot().Query(q) returns at that boundary:
//
//	sub, _ := src.Subscribe(hotpaths.Query{}.MinHotness(3).K(20))
//	go func() {
//		var result []hotpaths.HotPath
//		for d := range sub.Deltas() {
//			result = d.Apply(result)
//			fmt.Printf("t=%d: +%d -%d, %d hot paths\n",
//				d.Clock, len(d.Entered), len(d.Left), len(result))
//		}
//	}()
//
// Publication never blocks ingestion: each subscription has a buffered
// channel, and when a slow consumer lets it fill, the undelivered deltas
// are dropped and replaced by a single reset delta carrying the query's
// full current result (Delta.Reset; Delta.Missed counts the dropped
// epochs) — the consumer is re-baselined automatically and never has to
// resynchronise by hand. Closing the Engine or Durable closes every
// subscription channel; Subscription.Close detaches one subscriber. The
// cmd/hotpathsd daemon exposes subscriptions as GET /watch, a
// Server-Sent Events stream.
//
// # Concurrency: System vs Engine
//
// The package offers two deployments of the same architecture:
//
//   - System is single-goroutine: Observe, Tick and the queries must all be
//     called from one goroutine. It is the right choice for simulation,
//     trace replay, step-debugging, and any workload driven by a single
//     loop — it has zero synchronisation overhead and its behaviour is
//     trivially deterministic.
//   - Engine (see NewEngine) is the concurrent, object-sharded realisation
//     of the paper's distributed design: objects hash to shards, each shard
//     goroutine owns a bank of RayTrace filters fed through a buffered
//     queue, and reports funnel into a single coordinator at epoch
//     boundaries. Observe/ObserveBatch are safe to call from many
//     goroutines at once (observations for the same object must still be
//     time-ordered by their producer), so Engine is the right choice when
//     many producers push observations concurrently — e.g. the
//     cmd/hotpathsd network daemon — or when ingest throughput matters.
//
// Both produce bit-identical hot paths, scores and counters when fed the
// same observations in the same order, because the Engine merges shard
// reports back into the single-threaded arrival order before the
// coordinator processes an epoch.
//
// # Durability: OpenDurable and Recover
//
// Both deployments are in-memory; OpenDurable wraps either in a
// write-ahead log so the discovered state survives crashes and restarts.
// Every Observe and Tick is journaled (length-prefixed, CRC-checksummed,
// group-committed to disk every DurableConfig.FsyncInterval) before it is
// applied; full-state checkpoints at epoch boundaries bound recovery to
// about one window of replay. Because replaying the journal is just
// re-running the deterministic pipeline, the recovered state — via
// OpenDurable on the same directory, or read-only via Recover — is
// bit-identical to the pre-crash state at the last durable record, a
// property the crash-recovery golden tests enforce by cutting the log at
// arbitrary byte offsets. The cmd/hotpathsd daemon exposes this as
// -wal/-fsync flags plus a POST /admin/checkpoint endpoint.
//
// # Replication: OpenFollower and the read-only Source
//
// Determinism makes the journal a replication log too. A process built
// on OpenDurable becomes a replication primary by mounting
// NewReplicationFeed on its HTTP mux (hotpathsd does this with -wal),
// and OpenFollower turns that feed into a live read-only replica: it
// bootstraps from the primary's newest checkpoint, tails the WAL stream,
// applies it to a local Engine, and reconnects with resume-from-LSN on
// its own. At every shared epoch boundary the follower's
// Snapshot().Query(q) is byte-identical to the primary's, so /topk-style
// read traffic scales horizontally across replicas.
//
// A Follower implements Source, but only the read half of it. The
// contract every Source consumer should know:
//
//   - Observe, ObserveNoisy, ObserveBatch, Tick — always return
//     ErrReadOnly (check with errors.Is); writes belong on the primary.
//   - Snapshot, Subscribe, Stats, Config, Shards — work normally,
//     answered locally with no primary round-trip.
//
// Replication is asynchronous — reads lag the primary by roughly the
// group-commit flush interval plus one poll — and Follower.Replication
// reports the applied/primary LSN, epoch positions and lag. The
// cmd/hotpathsd daemon exposes the whole topology as -follow (write
// endpoints answer 403, /stats grows replication_* fields, /healthz
// degrades past -max-lag); see the README's "Replication & read
// scaling" section for topology and failover notes.
//
// The full distributed simulation used by the paper's evaluation (road
// network, moving-object workload, DP baseline, figure sweeps) lives in the
// internal packages and is driven by the cmd/ tools and the benchmark
// suite.
package hotpaths

import (
	"errors"
	"fmt"
	"io"
	"math"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/uncertainty"
)

// Point is a location in the plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Rect is an axis-aligned rectangle given by its Min and Max corners.
type Rect struct {
	Min, Max Point
}

// HotPath is a discovered motion path with its current hotness.
type HotPath struct {
	ID      uint64
	Start   Point
	End     Point
	Hotness int
}

// Length returns the path's Euclidean length.
func (hp HotPath) Length() float64 {
	return geom.Pt(hp.Start.X, hp.Start.Y).Dist(geom.Pt(hp.End.X, hp.End.Y))
}

// Score is the paper's quality metric: hotness × length.
func (hp HotPath) Score() float64 { return float64(hp.Hotness) * hp.Length() }

// Config parameterises a System.
type Config struct {
	// Eps is the tolerance ε in metres (required, positive): discovered
	// paths stay within Eps of the objects that cross them.
	Eps float64

	// Delta, when positive, enables the (ε,δ) uncertainty model: observations
	// are treated as Gaussian with the per-observation standard deviations
	// passed to ObserveNoisy, and proximity holds with probability ≥ 1−δ.
	Delta float64

	// W is the sliding window length in timestamps (required, positive):
	// crossings older than W no longer count toward hotness.
	W int64

	// Epoch is the coordinator cadence Λ in timestamps (required, positive):
	// reported objects receive their new safe-area seed at the next multiple
	// of Epoch, mirroring the paper's epoch-based communication.
	Epoch int64

	// K is the top-k size for TopK (default 10).
	K int

	// Bounds is the monitored region used to size the coordinator's grid
	// index (required, positive area).
	Bounds Rect

	// GridCols, GridRows control the index resolution (default 64×64).
	GridCols, GridRows int
}

// Stats aggregates a System's lifetime counters.
type Stats struct {
	Observations int // measurements fed via Observe/ObserveNoisy
	Reports      int // state messages the filters raised
	Responses    int // endpoints handed back at epoch boundaries
	Epochs       int // epoch boundaries processed (the subscription/replication epoch sequence)
	PathsCreated int
	PathsExpired int
	Crossings    int
	IndexSize    int // currently stored motion paths
}

// System is an in-process deployment of the paper's architecture: the
// per-object RayTrace filters plus the SinglePath coordinator. It is not
// safe for concurrent use; drive it from a single goroutine.
type System struct {
	cfg     Config
	coord   *coordinator.Coordinator
	filters map[int]*raytrace.Filter
	// sigmas remembers each object's first-observation noise levels — the
	// parameters its tolerance model was built with — so checkpoints can
	// rebuild the filter's ToleranceFunc on restore.
	sigmas  map[int][2]float64
	pending []coordinator.Report
	stats   Stats
	lastNow int64
	// subs fans epoch snapshots out to standing queries; it has its own
	// mutex, so Subscription.Close and channel reads are goroutine-safe
	// even though the System itself is single-goroutine.
	subs hub
}

// A ConfigError reports one invalid Config field, rejected by New or
// NewEngine. Callers classify it with errors.As and branch on Field —
// never by matching the rendered message (the errstring contract).
type ConfigError struct {
	Field  string // the offending Config field, e.g. "Bounds"
	Reason string // the violated constraint, including the bad value
}

func (e *ConfigError) Error() string { return "hotpaths: Config." + e.Field + " " + e.Reason }

// withDefaults validates cfg and fills in the defaulted fields.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Eps <= 0 {
		return cfg, &ConfigError{Field: "Eps", Reason: fmt.Sprintf("must be positive, got %v", cfg.Eps)}
	}
	if cfg.Delta < 0 || cfg.Delta >= 1 {
		return cfg, &ConfigError{Field: "Delta", Reason: fmt.Sprintf("must be in [0,1), got %v", cfg.Delta)}
	}
	if cfg.W <= 0 {
		return cfg, &ConfigError{Field: "W", Reason: fmt.Sprintf("must be positive, got %d", cfg.W)}
	}
	if cfg.Epoch <= 0 {
		return cfg, &ConfigError{Field: "Epoch", Reason: fmt.Sprintf("must be positive, got %d", cfg.Epoch)}
	}
	// NaNs fail these comparisons too, so they are rejected here rather
	// than surfacing as an internal grid-index error.
	if !(cfg.Bounds.Max.X > cfg.Bounds.Min.X && cfg.Bounds.Max.Y > cfg.Bounds.Min.Y) {
		return cfg, &ConfigError{Field: "Bounds", Reason: fmt.Sprintf("must have positive area (Max > Min on both axes), got min=%v max=%v",
			cfg.Bounds.Min, cfg.Bounds.Max)}
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	return cfg, nil
}

// newCoordinator builds the coordinator tier for cfg.
func (cfg Config) newCoordinator() (*coordinator.Coordinator, error) {
	bounds := geom.Rect{
		Lo: geom.Pt(cfg.Bounds.Min.X, cfg.Bounds.Min.Y),
		Hi: geom.Pt(cfg.Bounds.Max.X, cfg.Bounds.Max.Y),
	}
	return coordinator.New(coordinator.Config{
		Bounds: bounds,
		Cols:   cfg.GridCols,
		Rows:   cfg.GridRows,
		W:      trajectory.Time(cfg.W),
		Eps:    cfg.Eps,
	})
}

// New validates cfg and creates an empty System.
func New(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	coord, err := cfg.newCoordinator()
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:     cfg,
		coord:   coord,
		filters: make(map[int]*raytrace.Filter),
		sigmas:  make(map[int][2]float64),
	}, nil
}

// Observe feeds one location measurement for objectID at timestamp t.
// Timestamps must be strictly increasing per object, and coordinates must
// be finite. In (ε,δ) mode the measurement is treated as exact; use
// ObserveNoisy to pass its noise.
func (s *System) Observe(objectID int, x, y float64, t int64) error {
	if err := checkCoords(x, y); err != nil {
		return err
	}
	return s.observe(objectID, trajectory.TP(geom.Pt(x, y), trajectory.Time(t)), 0, 0)
}

// ObserveNoisy feeds a Gaussian measurement with per-axis standard
// deviations. It requires Config.Delta > 0.
func (s *System) ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error {
	if s.cfg.Delta <= 0 {
		return fmt.Errorf("hotpaths: ObserveNoisy requires Config.Delta > 0")
	}
	if err := checkCoords(x, y); err != nil {
		return err
	}
	if err := checkSigmas(sigmaX, sigmaY); err != nil {
		return err
	}
	return s.observe(objectID, trajectory.TP(geom.Pt(x, y), trajectory.Time(t)), sigmaX, sigmaY)
}

// finite rejects the values every geometric comparison downstream handles
// wrongly: NaN compares false against everything, so a NaN coordinate
// would silently wedge a filter's safe-area state instead of erroring.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// badCoords and badSigmas are the single source of the ingest validation
// rules and messages; the prefix-adding wrappers below adapt them to the
// single-observation and batch error shapes.

func badCoords(x, y float64) error {
	if !finite(x) || !finite(y) {
		return fmt.Errorf("coordinates must be finite, got (%v, %v)", x, y)
	}
	return nil
}

// badSigmas validates noisy-measurement standard deviations: positive
// and finite (an infinite sigma would make every tolerance rectangle
// unbounded).
func badSigmas(sigmaX, sigmaY float64) error {
	if !(sigmaX > 0 && sigmaY > 0 && finite(sigmaX) && finite(sigmaY)) {
		return fmt.Errorf("standard deviations must be positive and finite, got (%v, %v)", sigmaX, sigmaY)
	}
	return nil
}

// checkCoords validates a measurement's coordinates at the API boundary,
// before they can reach filter or WAL state.
func checkCoords(x, y float64) error {
	if err := badCoords(x, y); err != nil {
		return fmt.Errorf("hotpaths: %w", err)
	}
	return nil
}

func checkSigmas(sigmaX, sigmaY float64) error {
	if err := badSigmas(sigmaX, sigmaY); err != nil {
		return fmt.Errorf("hotpaths: %w", err)
	}
	return nil
}

func (s *System) observe(objectID int, tp trajectory.TimePoint, sigmaX, sigmaY float64) error {
	s.stats.Observations++
	f, ok := s.filters[objectID]
	if !ok {
		s.filters[objectID] = raytrace.NewWithTolerance(tp, s.cfg.toleranceFunc(sigmaX, sigmaY))
		if sigmaX != 0 || sigmaY != 0 {
			s.sigmas[objectID] = [2]float64{sigmaX, sigmaY}
		}
		return nil
	}
	st, report, err := f.Process(tp)
	if err != nil {
		return fmt.Errorf("hotpaths: object %d: %w", objectID, err)
	}
	if report {
		s.enqueue(objectID, st)
	}
	return nil
}

// toleranceFunc builds the per-point tolerance model: the fixed ε square,
// or the Gaussian (ε,δ) rectangle when Delta and sigmas are set. The
// retroactive minimum of ε/10 guards against unsatisfiable noise levels.
func (cfg Config) toleranceFunc(sigmaX, sigmaY float64) raytrace.ToleranceFunc {
	if cfg.Delta <= 0 || sigmaX <= 0 || sigmaY <= 0 {
		return raytrace.FixedTolerance(cfg.Eps)
	}
	eps, delta := cfg.Eps, cfg.Delta
	return func(tp trajectory.TimePoint) geom.Rect {
		m := uncertainty.Measurement{Mean: tp.P, SigmaX: sigmaX, SigmaY: sigmaY}
		return uncertainty.ToleranceRectOrMin(m, eps, delta, eps/10)
	}
}

func (s *System) enqueue(objectID int, st raytrace.State) {
	s.pending = append(s.pending, coordinator.Report{ObjectID: objectID, State: st})
	s.stats.Reports++
}

// Tick advances the system clock to now: the hotness window slides, and at
// epoch boundaries — whenever the clock reaches or crosses a multiple of
// Config.Epoch — the coordinator processes all pending reports and
// re-seeds the reporting filters. Call it once per timestamp, after that
// timestamp's Observes; sparse clocks that jump over a boundary still
// trigger the epoch.
func (s *System) Tick(now int64) error {
	if now <= s.lastNow {
		return fmt.Errorf("hotpaths: Tick(%d) after Tick(%d); time must advance", now, s.lastNow)
	}
	prev := s.lastNow
	s.lastNow = now
	s.coord.Advance(trajectory.Time(now))
	if now/s.cfg.Epoch == prev/s.cfg.Epoch {
		return nil
	}
	batch := s.pending
	s.pending = nil
	resps, err := s.coord.ProcessEpoch(batch)
	if err != nil {
		// Validation is deterministic per report, so a rejected batch can
		// never succeed later; it is dropped rather than wedging every
		// future epoch. RayTrace filters cannot produce such reports.
		return err
	}
	// A sparse clock that jumped more than W past the reports' exit
	// timestamps makes the just-recorded crossings already stale; expire
	// them now so TopK/Score never surface phantom hot paths.
	s.coord.Advance(trajectory.Time(now))
	var errs []error
	for _, r := range resps {
		s.stats.Responses++
		st, report, err := s.filters[r.ObjectID].Respond(r.End)
		if err != nil {
			// Respond validates before mutating, so the filter stays
			// waiting; keep delivering the remaining responses rather than
			// leaving other filters un-reseeded (mirrors Engine.Tick).
			errs = append(errs, fmt.Errorf("hotpaths: respond to object %d: %w", r.ObjectID, err))
			continue
		}
		if report {
			s.enqueue(r.ObjectID, st)
		}
	}
	// Fan the post-epoch state out to standing queries. The snapshot copy
	// is skipped entirely while nobody subscribes; publication itself
	// never blocks (see hub).
	if s.subs.any() {
		s.subs.publish(s.Snapshot())
	}
	return errors.Join(errs...)
}

// Config returns the system's configuration with defaults applied.
func (s *System) Config() Config { return s.cfg }

// TopK returns the Config.K hottest motion paths, hottest first. It is a
// live accessor — shorthand for Snapshot().TopK(); use Snapshot directly
// when several reads must agree on one instant.
func (s *System) TopK() []HotPath {
	return s.Snapshot().TopK()
}

// HotPaths returns every live motion path, hottest first. Shorthand for
// Snapshot().HotPaths().
func (s *System) HotPaths() []HotPath {
	return s.Snapshot().HotPaths()
}

// Score returns the paper's quality metric over the current top-k set: the
// average hotness×length. Shorthand for Snapshot().Score().
func (s *System) Score() float64 { return s.Snapshot().Score() }

// WriteGeoJSON writes every live motion path as a GeoJSON
// FeatureCollection, hottest first, with hotness/length/score properties.
// Shorthand for Snapshot().WriteGeoJSON(w).
func (s *System) WriteGeoJSON(w io.Writer) error {
	return s.Snapshot().WriteGeoJSON(w)
}

// Clock returns the timestamp of the last Tick — cheap (no snapshot),
// for monitoring probes. Like every System method it must be called from
// the goroutine driving the System.
func (s *System) Clock() int64 { return s.lastNow }

// Stats returns the system's counters.
func (s *System) Stats() Stats {
	cs := s.coord.Stats()
	out := s.stats
	out.Epochs = cs.Epochs
	out.PathsCreated = cs.PathsCreated
	out.PathsExpired = cs.PathsExpired
	out.Crossings = cs.Crossings
	out.IndexSize = s.coord.IndexSize()
	return out
}

func convert(in []motion.HotPath) []HotPath {
	out := make([]HotPath, len(in))
	for i, hp := range in {
		out[i] = HotPath{
			ID:      uint64(hp.Path.ID),
			Start:   Point{hp.Path.S.X, hp.Path.S.Y},
			End:     Point{hp.Path.E.X, hp.Path.E.Y},
			Hotness: hp.Hotness,
		}
	}
	return out
}

package gateway

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"hotpaths"
)

// gwQuery mirrors hotpathsd's URL query parameters over the gateway's
// merged view. hotpaths.Query carries the same selection but applies
// only to a Snapshot, so the gateway keeps its own copy of the fields
// and replicates Snapshot.Query's order of operations exactly — the
// golden tests hold it to byte-identical answers.
type gwQuery struct {
	k          int
	minHotness int
	region     hotpaths.Rect
	hasRegion  bool
	order      hotpaths.SortOrder
}

// parseQuery parses the shared URL parameters k (or limit), min_hotness,
// bbox=minx,miny,maxx,maxy and sort=hotness|score, with hotpathsd's
// exact validation rules.
func parseQuery(r *http.Request, defaultK int) (gwQuery, error) {
	q := gwQuery{}
	vals := r.URL.Query()
	if vals.Get("k") != "" && vals.Get("limit") != "" {
		return q, fmt.Errorf("k and limit are aliases; pass only one")
	}
	q.k = defaultK
	for _, name := range []string{"k", "limit"} {
		if s := vals.Get(name); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				return q, fmt.Errorf("%s must be a non-negative integer, got %q", name, s)
			}
			q.k = n
		}
	}
	if s := vals.Get("min_hotness"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("min_hotness must be a non-negative integer, got %q", s)
		}
		q.minHotness = n
	}
	if s := vals.Get("bbox"); s != "" {
		rect, err := parseBounds(s)
		if err != nil {
			return q, fmt.Errorf("bbox: %w", err)
		}
		if rect.Max.X < rect.Min.X || rect.Max.Y < rect.Min.Y {
			return q, fmt.Errorf("bbox %q has max < min", s)
		}
		q.region, q.hasRegion = rect, true
	}
	switch s := vals.Get("sort"); s {
	case "", "hotness":
		q.order = hotpaths.ByHotness
	case "score":
		q.order = hotpaths.ByScore
	default:
		return q, fmt.Errorf("sort must be \"hotness\" or \"score\", got %q", s)
	}
	return q, nil
}

// parseBounds parses "minx,miny,maxx,maxy" with hotpathsd's rules
// (finite components only; NaN and Inf would silently match nothing).
func parseBounds(s string) (hotpaths.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return hotpaths.Rect{}, fmt.Errorf("bounds must be minx,miny,maxx,maxy, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return hotpaths.Rect{}, fmt.Errorf("bounds component %q: %w", p, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return hotpaths.Rect{}, fmt.Errorf("bounds component %q must be finite", p)
		}
		vals[i] = v
	}
	return hotpaths.Rect{
		Min: hotpaths.Pt(vals[0], vals[1]),
		Max: hotpaths.Pt(vals[2], vals[3]),
	}, nil
}

// apply runs the selection over the merged view with Snapshot.Query's
// order of operations: region filter (end vertex inside, inclusive, in
// canonical order), min_hotness prefix cut, then the order/k shaping.
// paths must be in canonical (ByHotness) order and is never mutated.
func (q gwQuery) apply(paths []hotpaths.HotPath) []hotpaths.HotPath {
	sel := paths
	if q.hasRegion {
		filtered := make([]hotpaths.HotPath, 0, len(sel))
		for _, hp := range sel {
			if hp.End.X >= q.region.Min.X && hp.End.X <= q.region.Max.X &&
				hp.End.Y >= q.region.Min.Y && hp.End.Y <= q.region.Max.Y {
				filtered = append(filtered, hp)
			}
		}
		sel = filtered
	}
	if q.minHotness > 0 {
		// Canonical order means the matches are exactly a prefix.
		cut := sort.Search(len(sel), func(i int) bool { return sel[i].Hotness < q.minHotness })
		sel = sel[:cut]
	}
	if q.order == hotpaths.ByHotness {
		if q.k > 0 && q.k < len(sel) {
			sel = sel[:q.k]
		}
		out := make([]hotpaths.HotPath, len(sel))
		copy(out, sel)
		return out
	}
	out := make([]hotpaths.HotPath, len(sel))
	copy(out, sel)
	hotpaths.SortResults(out, q.order)
	if q.k > 0 && q.k < len(out) {
		out = out[:q.k]
	}
	return out
}

package batchclock_test

import (
	"testing"

	"hotpaths/internal/analysis/analyzertest"
	"hotpaths/internal/analysis/batchclock"
)

func TestBatchclock(t *testing.T) {
	analyzertest.Run(t, batchclock.Analyzer, "a")
}

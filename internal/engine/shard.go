package engine

import (
	"fmt"
	"sync/atomic"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// An ObjectError is a per-observation processing failure attributed to
// one object, surfaced from the epoch-boundary Tick that follows it.
// Tick wraps it ("engine: ..."), so callers classify with
// errors.As(&ObjectError{}) — never by matching the rendered text
// (the errstring contract).
type ObjectError struct {
	ObjectID int
	Err      error
}

func (e *ObjectError) Error() string { return fmt.Sprintf("object %d: %v", e.ObjectID, e.Err) }

func (e *ObjectError) Unwrap() error { return e.Err }

// obs is an Observation tagged with its global ingestion sequence number,
// assigned when the observation entered the engine. Sequence numbers
// restore the single-threaded arrival order when shard reports are merged
// at an epoch boundary.
type obs struct {
	Observation
	seq uint64
}

// taggedReport is a RayTrace state message remembering the sequence number
// of the observation that triggered it.
type taggedReport struct {
	seq uint64
	rep coordinator.Report
}

// msg is one unit of work on a shard's queue: a batch of observations, a
// single inline observation (hasOne, the allocation-free Observe path), or
// a flush token (non-nil flush) the shard closes once everything queued
// before it has been processed.
type msg struct {
	obs    []obs
	one    obs
	hasOne bool
	flush  chan struct{}
}

// shard owns the RayTrace filters for the objects that hash to it. All
// fields below the channel are owned by the shard goroutine while it runs;
// the engine touches them only between a flush barrier and the next send,
// which the channel synchronisation orders correctly.
type shard struct {
	ch   chan msg
	done chan struct{}
	tol  func(sigmaX, sigmaY float64) raytrace.ToleranceFunc

	filters map[int]*raytrace.Filter
	// sigmas remembers each object's first-observation noise levels — the
	// parameters its tolerance model was built with — so checkpoints can
	// rebuild the filter's ToleranceFunc on restore.
	sigmas  map[int][2]float64
	reports []taggedReport
	err     error // first processing error since the last barrier

	// Monotone counters, atomic so Stats can read them mid-flight.
	observed atomic.Int64
	reported atomic.Int64
}

func newShard(buffer int, tol func(sigmaX, sigmaY float64) raytrace.ToleranceFunc) *shard {
	return &shard{
		ch:      make(chan msg, buffer),
		done:    make(chan struct{}),
		tol:     tol,
		filters: make(map[int]*raytrace.Filter),
		sigmas:  make(map[int][2]float64),
	}
}

// run is the shard goroutine: drain the queue, acking flush tokens in
// order. It exits when the channel is closed.
func (s *shard) run() {
	defer close(s.done)
	for m := range s.ch {
		switch {
		case m.flush != nil:
			close(m.flush)
		case m.hasOne:
			s.process(m.one)
		default:
			for _, o := range m.obs {
				s.process(o)
			}
		}
	}
}

// process mirrors System.observe: the first observation of an object seeds
// its filter, later ones step the SSA, and violations queue a report for
// the next epoch.
func (s *shard) process(o obs) {
	s.observed.Add(1)
	tp := trajectory.TP(o.P, o.T)
	f, ok := s.filters[o.ObjectID]
	if !ok {
		s.filters[o.ObjectID] = raytrace.NewWithTolerance(tp, s.tol(o.SigmaX, o.SigmaY))
		if o.SigmaX != 0 || o.SigmaY != 0 {
			s.sigmas[o.ObjectID] = [2]float64{o.SigmaX, o.SigmaY}
		}
		return
	}
	st, report, err := f.Process(tp)
	if err != nil {
		if s.err == nil {
			s.err = &ObjectError{ObjectID: o.ObjectID, Err: err}
		}
		return
	}
	if report {
		s.reports = append(s.reports, taggedReport{
			seq: o.seq,
			rep: coordinator.Report{ObjectID: o.ObjectID, State: st},
		})
		s.reported.Add(1)
	}
}

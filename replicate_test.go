package hotpaths

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hotpaths/internal/replication"
	"hotpaths/internal/wal"
)

// servePrimary mounts the replication feed over a Durable's directory the
// way hotpathsd does, and returns its base URL.
func servePrimary(t *testing.T, dur *Durable, dir string) (*httptest.Server, *replication.Server) {
	t.Helper()
	rs := &replication.Server{
		Dir: dir,
		Position: func() replication.Status {
			snap := dur.Snapshot()
			return replication.Status{
				NextLSN: dur.WAL().NextLSN,
				Epoch:   snap.Epoch(),
				Clock:   snap.Clock(),
			}
		},
		Poll:      time.Millisecond,
		Heartbeat: 10 * time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+replication.StreamPath, rs.ServeStream)
	mux.HandleFunc("GET "+replication.CheckpointPath, rs.ServeCheckpoint)
	mux.HandleFunc("GET "+replication.MetaPath, rs.ServeMeta)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, rs
}

// replicationQueries is the query battery both sides answer; byte
// equality across all of them at one epoch is the convergence check.
func replicationQueries() []Query {
	return []Query{
		{},
		Query{}.K(10),
		Query{}.MinHotness(2),
		Query{}.Region(Rect{Min: Pt(0, -10), Max: Pt(400, 400)}).SortBy(ByScore).K(5),
	}
}

// waitCaughtUp blocks until the follower has applied through clock t and
// epoch e.
func waitCaughtUp(t *testing.T, f *Follower, clock, epoch int64) Snapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap := f.Snapshot()
		if snap.Clock() == clock && snap.Epoch() == epoch {
			return snap
		}
		if time.Now().After(deadline) {
			rs := f.Replication()
			t.Fatalf("follower stuck at clock=%d epoch=%d, want clock=%d epoch=%d (replication: %+v)",
				snap.Clock(), snap.Epoch(), clock, epoch, rs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerMatchesPrimary is the in-process golden replication test: a
// follower attaches mid-stream, survives a primary checkpoint+truncation
// and a forced reconnect, and still answers every query byte-identically
// to the primary at every shared epoch boundary. (The multi-process
// variant over real hotpathsd processes lives in cmd/hotpathsd behind the
// replication_e2e build tag.)
func TestFollowerMatchesPrimary(t *testing.T) {
	cfg := engineTestConfig()
	batches := flowWorkload(48, 160, 42)
	dir := t.TempDir()
	dur, err := OpenDurable(dir, DurableConfig{
		Config:        cfg,
		Concurrent:    true,
		Shards:        4,
		SegmentBytes:  8 << 10, // rotate often so truncation really deletes segments
		FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv, _ := servePrimary(t, dur, dir)

	feed := func(batch []Observation) {
		t.Helper()
		if err := dur.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := dur.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}

	// First third before the follower exists: attaching mid-stream must
	// replay or bootstrap this prefix.
	for _, batch := range batches[:50] {
		feed(batch)
	}

	f, err := OpenFollower(srv.URL, FollowerConfig{Shards: 2, ReconnectMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	epochsChecked := 0
	for i, batch := range batches[50:] {
		feed(batch)
		now := batch[0].T

		switch i {
		case 30:
			// Force a checkpoint; with tiny segments this truncates the
			// log's prefix for real, which a caught-up follower must not
			// even notice.
			before := dur.WAL().Segments
			if _, err := dur.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if after := dur.WAL().Segments; after >= before && before > 1 {
				t.Fatalf("checkpoint did not truncate: %d -> %d segments", before, after)
			}
		case 60:
			// Forced reconnect: kill every open connection; the follower
			// must resume from its applied LSN and converge again.
			srv.CloseClientConnections()
		}

		if now%cfg.Epoch != 0 {
			continue
		}
		psnap := dur.Snapshot()
		fsnap := waitCaughtUp(t, f, psnap.Clock(), psnap.Epoch())
		for qi, q := range replicationQueries() {
			pq, fq := psnap.Query(q), fsnap.Query(q)
			if !reflect.DeepEqual(pq, fq) {
				t.Fatalf("epoch %d query %d: follower diverged\nprimary:  %v\nfollower: %v",
					psnap.Epoch(), qi, pq, fq)
			}
		}
		if psnap.Stats() != fsnap.Stats() {
			t.Fatalf("epoch %d: counters diverged: primary %+v follower %+v",
				psnap.Epoch(), psnap.Stats(), fsnap.Stats())
		}
		epochsChecked++
	}
	if epochsChecked < 8 {
		t.Fatalf("only %d epochs checked; workload too short", epochsChecked)
	}
	if rs := f.Replication(); rs.Reconnects == 0 {
		t.Fatalf("forced reconnect did not register: %+v", rs)
	}

	// A brand-new follower now bootstraps from the post-truncation
	// checkpoint — streaming from LSN 0 is impossible, which the raw
	// client confirms — and converges too.
	if err := dur.Sync(); err != nil {
		t.Fatal(err)
	}
	c := &replication.Client{Base: srv.URL}
	err = c.Stream(context.Background(), 0, func(uint64, wal.Record) error { return nil }, nil)
	if !errors.Is(err, replication.ErrSnapshotNeeded) {
		t.Fatalf("stream from 0 after truncation: got %v, want ErrSnapshotNeeded", err)
	}
	f2, err := OpenFollower(srv.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if rs := f2.Replication(); rs.Bootstraps == 0 {
		t.Fatalf("late follower did not bootstrap from checkpoint: %+v", rs)
	}
	psnap := dur.Snapshot()
	fsnap := waitCaughtUp(t, f2, psnap.Clock(), psnap.Epoch())
	for qi, q := range replicationQueries() {
		if !reflect.DeepEqual(psnap.Query(q), fsnap.Query(q)) {
			t.Fatalf("late follower query %d diverged", qi)
		}
	}
}

// TestFollowerHealsDivergenceWithoutCheckpoint: a primary that crashes
// before its first checkpoint and loses flushed-but-unsynced tail
// records leaves a follower AHEAD of the rewritten LSN space. On
// reconnect the primary answers 410; with no checkpoint to bootstrap
// from, the follower must wipe its diverged state and replay from LSN 0
// — not retry the invalid LSN forever.
func TestFollowerHealsDivergenceWithoutCheckpoint(t *testing.T) {
	cfg := engineTestConfig()
	dir := t.TempDir()
	open := func() *Durable {
		d, err := OpenDurable(dir, DurableConfig{
			Config:          cfg,
			FsyncInterval:   time.Millisecond,
			CheckpointEvery: -1, // never checkpoint, not even on Close
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dur := open()

	// The feed must survive the primary "crash", like a stable LB in
	// front of a restarting process; it reads the current Durable from a
	// swappable pointer.
	var cur atomic.Pointer[Durable]
	cur.Store(dur)
	rs := &replication.Server{
		Dir: dir,
		Position: func() replication.Status {
			d := cur.Load()
			return replication.Status{NextLSN: d.NextLSN(), Epoch: int64(d.Stats().Epochs), Clock: d.Clock()}
		},
		Poll:      time.Millisecond,
		Heartbeat: 10 * time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+replication.StreamPath, rs.ServeStream)
	mux.HandleFunc("GET "+replication.CheckpointPath, rs.ServeCheckpoint)
	mux.HandleFunc("GET "+replication.MetaPath, rs.ServeMeta)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	batches := flowWorkload(16, 80, 5)
	for _, batch := range batches[:60] {
		if err := dur.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := dur.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	f, err := OpenFollower(srv.URL, FollowerConfig{ReconnectMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lost := dur.NextLSN()
	deadline := time.Now().Add(15 * time.Second)
	for f.Replication().AppliedLSN < lost {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", f.Replication())
		}
		time.Sleep(time.Millisecond)
	}

	// "Crash": close the primary, then cut the last records off the WAL
	// at a frame boundary — the shape of losing a flushed-but-unsynced
	// tail — and restart it.
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut right AFTER a tick record: an Engine only drains its shard
	// queues at ticks, so a prefix ending mid-timestamp would leave the
	// follower's trailing observations queued (the Engine's documented
	// eventual consistency) and the counter comparison below meaningless.
	off, n, keep, kept := 0, uint64(0), 0, uint64(0)
	for n < lost-40 { // drop the last ~40+ records
		r, consumed, derr := wal.DecodeRecord(b[off:])
		if derr != nil {
			t.Fatalf("decode while cutting at %d: %v", off, derr)
		}
		off += consumed
		n++
		if r.Kind == wal.KindTick {
			keep, kept = off, n
		}
	}
	if kept == 0 {
		t.Fatal("no tick record in the kept prefix")
	}
	if err := os.WriteFile(seg, b[:keep], 0o644); err != nil {
		t.Fatal(err)
	}
	dur = open()
	defer dur.Close()
	cur.Store(dur)
	if got := dur.NextLSN(); got != kept {
		t.Fatalf("restarted primary NextLSN = %d, want %d", got, kept)
	}

	// The follower is now ahead of the primary. Force the reconnect a
	// real crash would cause (here the feed outlived the "process"):
	// resume is refused, and with no checkpoint the follower must reset
	// and replay from 0.
	f.Reconnect()
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := f.Replication()
		if st.Bootstraps >= 1 && st.AppliedLSN == kept && st.Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never healed the divergence: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Replication continues on the healed stream: feed the restarted
	// primary past the next epoch boundaries (counters are exact only at
	// boundaries — an Engine drains its shards there) and converge.
	for _, batch := range batches[60:] {
		if err := dur.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := dur.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	psnap := dur.Snapshot()
	fsnap := waitCaughtUp(t, f, psnap.Clock(), psnap.Epoch())
	if psnap.Stats() != fsnap.Stats() {
		t.Fatalf("healed follower counters diverged: primary %+v follower %+v", psnap.Stats(), fsnap.Stats())
	}
	for qi, q := range replicationQueries() {
		if !reflect.DeepEqual(psnap.Query(q), fsnap.Query(q)) {
			t.Fatalf("healed follower query %d diverged", qi)
		}
	}
}

// TestFollowerStallWatchdog: a stream that stops producing records AND
// heartbeats (hung primary, black-holed network) must be dropped and
// redialed, not trusted forever.
func TestFollowerStallWatchdog(t *testing.T) {
	cfg := engineTestConfig()
	dir := t.TempDir()
	dur, err := OpenDurable(dir, DurableConfig{Config: cfg, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	// A pathological feed: it sends the connect-time heartbeat and any
	// existing records, then goes silent for an hour.
	rs := &replication.Server{
		Dir: dir,
		Position: func() replication.Status {
			return replication.Status{NextLSN: dur.NextLSN()}
		},
		Poll:      time.Hour,
		Heartbeat: time.Hour,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+replication.StreamPath, rs.ServeStream)
	mux.HandleFunc("GET "+replication.CheckpointPath, rs.ServeCheckpoint)
	mux.HandleFunc("GET "+replication.MetaPath, rs.ServeMeta)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	f, err := OpenFollower(srv.URL, FollowerConfig{
		ReconnectMin: time.Millisecond,
		StallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Replication()
		if st.Reconnects >= 2 && strings.Contains(st.LastError, "stalled") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall watchdog never fired: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerRejectsWrites pins the read-only Source contract: every
// write method fails with ErrReadOnly, and reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	cfg := engineTestConfig()
	dir := t.TempDir()
	dur, err := OpenDurable(dir, DurableConfig{Config: cfg, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv, _ := servePrimary(t, dur, dir)
	f, err := OpenFollower(srv.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if err := f.Observe(1, 2, 3, 4); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Observe: got %v, want ErrReadOnly", err)
	}
	if err := f.ObserveNoisy(1, 2, 3, 1, 1, 4); !errors.Is(err, ErrReadOnly) {
		t.Errorf("ObserveNoisy: got %v, want ErrReadOnly", err)
	}
	if err := f.ObserveBatch([]Observation{{ObjectID: 1, T: 1}}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("ObserveBatch: got %v, want ErrReadOnly", err)
	}
	if err := f.Tick(9); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Tick: got %v, want ErrReadOnly", err)
	}
	// The rejected writes changed nothing.
	if n := f.Snapshot().Stats().Observations; n != 0 {
		t.Errorf("rejected writes leaked: %d observations", n)
	}
	if f.Config() != dur.Config() {
		t.Errorf("follower config %+v != primary %+v", f.Config(), dur.Config())
	}
}

// TestFollowerSubscriptions: standing queries fire on the follower as the
// applier replays epochs.
func TestFollowerSubscriptions(t *testing.T) {
	cfg := engineTestConfig()
	batches := flowWorkload(16, 80, 7)
	dir := t.TempDir()
	dur, err := OpenDurable(dir, DurableConfig{
		Config: cfg, Concurrent: true, FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv, _ := servePrimary(t, dur, dir)
	f, err := OpenFollower(srv.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sub, err := f.Subscribe(Query{}.K(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for _, batch := range batches {
		if err := dur.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := dur.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	// Drain deltas until the follower has replayed the final epoch (its
	// delta carries the final clock), applying each as a consumer would.
	var got []Delta
	var result []HotPath
	deadline := time.After(15 * time.Second)
	final := batches[len(batches)-1][0].T
	for len(got) == 0 || got[len(got)-1].Clock < final {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				t.Fatal("subscription closed early")
			}
			got = append(got, d)
			result = d.Apply(result)
		case <-deadline:
			t.Fatalf("follower subscription stalled after %d deltas", len(got))
		}
	}
	if len(result) == 0 {
		t.Fatal("replicated subscription produced an empty result")
	}
	// The applied stream lands on exactly what the follower's snapshot says.
	if want := f.Snapshot().Query(Query{}.K(8)); !reflect.DeepEqual(result, want) {
		t.Fatalf("delta stream result %v != snapshot query %v", result, want)
	}
}
